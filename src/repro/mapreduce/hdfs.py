"""Simulated HDFS: replicated, block-structured files of Python records.

Intermediate results of the Hive/Pig pipelines live here (the join result
file of the first MR job, the sampled quantiles, the sorted output).  Files
are split into blocks placed round-robin on worker nodes; writes charge the
replication pipeline's network traffic, reads are local to the block's node
when the reader is a map task scheduled there.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

from repro.common.serialization import sizeof
from repro.errors import HDFSError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.simulation import Node, SimContext

#: default block size; small so mini datasets still split across nodes
DEFAULT_BLOCK_BYTES = 2 * 1024 * 1024


@dataclass
class HDFSBlock:
    """One block of a file: records plus the primary replica's node."""

    node: "Node"
    records: list[Any] = field(default_factory=list)
    byte_size: int = 0


class SimHDFS:
    """The namespace of simulated files."""

    def __init__(self, ctx: "SimContext", block_bytes: int = DEFAULT_BLOCK_BYTES) -> None:
        self.ctx = ctx
        self.block_bytes = block_bytes
        self._files: dict[str, list[HDFSBlock]] = {}

    def exists(self, path: str) -> bool:
        return path in self._files

    def delete(self, path: str) -> None:
        if path not in self._files:
            raise HDFSError(f"no such file: {path!r}")
        del self._files[path]

    def delete_if_exists(self, path: str) -> None:
        self._files.pop(path, None)

    def list_files(self) -> list[str]:
        return sorted(self._files)

    def write_file(self, path: str, records: "list[Any]", writer_node: "Node | None" = None) -> int:
        """Create ``path`` from ``records``; returns total bytes written.

        Charges the HDFS write pipeline: each block is written locally (or
        shipped to its primary node) and then replicated ``replication - 1``
        more times across the network.
        """
        if path in self._files:
            raise HDFSError(f"file exists: {path!r}")
        blocks: list[HDFSBlock] = []
        current = HDFSBlock(self.ctx.cluster.next_worker())
        for record in records:
            size = sizeof(record)
            if current.byte_size + size > self.block_bytes and current.records:
                blocks.append(current)
                current = HDFSBlock(self.ctx.cluster.next_worker())
            current.records.append(record)
            current.byte_size += size
        blocks.append(current)
        self._files[path] = blocks

        total = sum(block.byte_size for block in blocks)
        model = self.ctx.cost_model
        remote = 0
        for block in blocks:
            copies = model.hdfs_replication - 1
            if writer_node is None or writer_node.node_id != block.node.node_id:
                copies += 1  # primary copy also crosses the network
            remote += block.byte_size * copies
        self.ctx.metrics.add_network(remote)
        self.ctx.metrics.advance_time(model.network_time(remote))
        return total

    def blocks(self, path: str) -> list[HDFSBlock]:
        """Block list of a file (for split computation)."""
        try:
            return self._files[path]
        except KeyError:
            raise HDFSError(f"no such file: {path!r}") from None

    def read_file(self, path: str) -> Iterator[Any]:
        """All records of a file, unmetered (callers charge their own I/O)."""
        for block in self.blocks(path):
            yield from block.records

    def file_size(self, path: str) -> int:
        return sum(block.byte_size for block in self.blocks(path))
