"""A miniature Hadoop: simulated HDFS plus a metered MapReduce engine.

The engine reproduces the cost structure that drives the paper's baseline
results: per-job startup overhead, locality-aware map tasks (mappers run on
the node storing their input region/block), combiners, hash or custom
partitioners, shuffle traffic, replicated HDFS output writes, and per-task
accounting of the simulated clock, network bytes and KV read units.
"""

from repro.mapreduce.hdfs import SimHDFS
from repro.mapreduce.job import (
    CollectOutput,
    HDFSInput,
    HDFSOutput,
    Job,
    TableInput,
    TableOutput,
    UnionTableInput,
)
from repro.mapreduce.runtime import JobResult, JobRunner

__all__ = [
    "SimHDFS",
    "CollectOutput",
    "HDFSInput",
    "HDFSOutput",
    "Job",
    "TableInput",
    "TableOutput",
    "UnionTableInput",
    "JobResult",
    "JobRunner",
]
