"""The MapReduce job runner: scheduling, shuffling, and cost accounting.

Execution follows Hadoop's phases:

1. **Startup** — a fixed per-job charge (dominates small jobs, which is why
   coordinator algorithms beat MapReduce ones on latency, §4.2).
2. **Map wave** — one task per input split, scheduled on the split's node
   (data locality).  Task time = local disk scan + per-record CPU; node
   time = its tasks serialized over its task slots; wave time = the slowest
   node.  Table splits charge KV read units per cell scanned.

   On ``parallelism="process"`` contexts, jobs whose task functions are
   registered refs (:class:`~repro.common.registry.FnRef`) run their map
   **and** reduce waves in real worker processes: split rows ship as
   :mod:`repro.cluster.wire` blocks, outcomes and per-task metric
   snapshots fold back in task order, so the simulated accounting below
   is byte-for-byte the serial accounting — only wall-clock changes.
3. **Combine** — per-task, reduces shuffle volume.
4. **Shuffle** — intermediate pairs are partitioned; bytes moving between
   different nodes are network traffic.
5. **Reduce** — grouped keys in sorted order; per-reducer memory footprint
   is tracked (peak grouped bytes), matching the paper's reducer-footprint
   report in §7.2.
6. **Output** — HDFS files charge replication traffic, table outputs charge
   the write path, collected outputs ship to the master.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.common.registry import FnRef, fn_ref, proc_fn, resolve
from repro.common.serialization import sizeof
from repro.errors import JobConfigurationError
from repro.mapreduce.hdfs import SimHDFS
from repro.mapreduce.job import (
    CollectOutput,
    HDFSInput,
    HDFSOutput,
    Job,
    TableInput,
    TableOutput,
    TaskContext,
    UnionTableInput,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.simulation import Node, SimContext
    from repro.store.client import Store


@dataclass
class _Split:
    """One map task's input: records plus placement and size facts."""

    node: "Node"
    records: list[tuple[Any, Any]]
    input_bytes: int
    kv_cells: int  # store cells scanned (0 for HDFS splits)


# -- task execution (shared by the serial, thread, and process paths) --------


def _as_callable(fn: "Callable | FnRef | None") -> "Callable | None":
    """A job task function as a plain callable (resolving refs)."""
    if fn is None or not isinstance(fn, FnRef):
        return fn
    return resolve(fn)


@dataclass
class _MapOutcome:
    """One map task's result, identical across execution backends.

    ``map_emitted`` counts the mapper's *pre-combine* output (it prices
    the task's CPU); ``pairs`` is the post-combine output that enters the
    shuffle.  Picklable, so worker processes return it as-is.
    """

    counters: dict[str, float]
    map_emitted: int
    pairs: list[tuple[Any, Any]]


@dataclass
class _ReduceOutcome:
    """One reduce task's result, identical across execution backends."""

    counters: dict[str, float]
    emitted: list[tuple[Any, Any]]
    grouped_bytes: int


def _group_sorted(pairs: "list[tuple[Any, Any]]") -> "list[tuple[Any, list]]":
    groups: dict[Any, list] = {}
    for key, value in pairs:
        groups.setdefault(key, []).append(value)
    return sorted(groups.items(), key=lambda item: item[0])


def _execute_map_split(
    map_fn: "Callable",
    finish_fn: "Callable | None",
    combiner_fn: "Callable | None",
    records: "list[tuple[Any, Any]]",
) -> _MapOutcome:
    """Run one split's map task (map + finish + per-task combine)."""
    task = TaskContext()
    for key, value in records:
        map_fn(key, value, task)
    if finish_fn is not None:
        finish_fn(task)
    emitted = task.emitted
    # combiner runs on the task's full output (per-task combine)
    if combiner_fn is not None and emitted:
        combine = TaskContext()
        for key, values in _group_sorted(emitted):
            combiner_fn(key, values, combine)
        for name, amount in combine.counters.items():
            task.counters[name] = task.counters.get(name, 0.0) + amount
        emitted = combine.emitted
    return _MapOutcome(task.counters, len(task.emitted), emitted)


def _execute_reduce_partition(
    reduce_fn: "Callable", pairs: "list[tuple[Any, Any]]"
) -> _ReduceOutcome:
    """Run one reducer's task over its partition of the shuffle."""
    task = TaskContext()
    grouped = _group_sorted(pairs)
    grouped_bytes = sum(
        sizeof(key) + sum(sizeof(v) for v in values) for key, values in grouped
    )
    for key, values in grouped:
        reduce_fn(key, values, task)
    return _ReduceOutcome(task.counters, task.emitted, grouped_bytes)


# -- process-boundary forms of the two wave tasks ----------------------------


def _input_kind(source: "TableInput | HDFSInput | UnionTableInput") -> str:
    """How a source's records ship to worker processes: plain table rows
    and source-tagged rows travel as wire blocks, HDFS records (already
    plain picklable values) travel as-is."""
    if isinstance(source, TableInput):
        return "rows"
    if isinstance(source, UnionTableInput):
        return "tagged"
    return "plain"


def _encode_split_records(kind: str, records: "list[tuple[Any, Any]]") -> Any:
    if kind == "plain":
        return records
    from repro.cluster.wire import encode_rows

    if kind == "rows":
        return encode_rows([row for _, row in records])
    return encode_rows(
        [value[1] for _, value in records], [value[0] for _, value in records]
    )


def _decode_split_records(kind: str, shipped: Any) -> "list[tuple[Any, Any]]":
    if kind == "plain":
        return shipped
    from repro.cluster.wire import decode_rows

    if kind == "rows":
        return [(row.row, row) for _, row in decode_rows(shipped)]
    return [(row.row, (tag, row)) for tag, row in decode_rows(shipped)]


@proc_fn("mr.map_split")
def _map_split_proc(payload: "dict[str, Any]") -> _MapOutcome:
    """Worker-process entry for one map split."""
    return _execute_map_split(
        _as_callable(payload["map"]),
        _as_callable(payload["finish"]),
        _as_callable(payload["combine"]),
        _decode_split_records(payload["kind"], payload["records"]),
    )


@proc_fn("mr.reduce_partition")
def _reduce_partition_proc(payload: "dict[str, Any]") -> _ReduceOutcome:
    """Worker-process entry for one reduce partition."""
    return _execute_reduce_partition(
        _as_callable(payload["reduce"]), payload["pairs"]
    )


@dataclass
class JobResult:
    """Outcome of a job run."""

    job_name: str
    collected: list[tuple[Any, Any]] = field(default_factory=list)
    counters: dict[str, float] = field(default_factory=dict)
    map_tasks: int = 0
    reduce_tasks: int = 0
    shuffle_bytes: int = 0
    sim_time_s: float = 0.0


class JobRunner:
    """Executes jobs against a store + HDFS pair, charging the context."""

    def __init__(self, ctx: "SimContext", store: "Store", hdfs: "SimHDFS") -> None:
        self.ctx = ctx
        self.store = store
        self.hdfs = hdfs

    # -- split computation ---------------------------------------------------

    def _table_splits(self, source: TableInput) -> list[_Split]:
        return self._splits_of_table(
            source.table_name,
            set(source.families) if source.families is not None else None,
            tag=None,
        )

    def _splits_of_table(
        self, table_name: str, families: "set[str] | None", tag: "str | None"
    ) -> list[_Split]:
        table = self.store.backing(table_name)
        splits = []
        for region in table.regions:  # lint: disable=RL301 (split planning mirrors HBase's client-side region lookup; map tasks charge the actual scans)
            rows = list(region.scan_rows(families=families))
            if tag is None:
                records = [(row.row, row) for row in rows]
            else:
                records = [(row.row, (tag, row)) for row in rows]
            input_bytes = sum(row.serialized_size() for row in rows)
            kv_cells = sum(len(row) for row in rows)
            splits.append(_Split(region.node, records, input_bytes, kv_cells))
        return splits

    def _union_splits(self, source: UnionTableInput) -> list[_Split]:
        families = set(source.families) if source.families is not None else None
        splits: list[_Split] = []
        for table_name in source.table_names:
            splits.extend(self._splits_of_table(table_name, families, tag=table_name))
        return splits

    def _hdfs_splits(self, source: HDFSInput) -> list[_Split]:
        splits = []
        index = 0
        for block in self.hdfs.blocks(source.path):
            records = []
            for record in block.records:
                records.append((index, record))
                index += 1
            splits.append(_Split(block.node, records, block.byte_size, 0))
        return splits

    # -- phase helpers -----------------------------------------------------------

    def _run_map_wave(
        self, job: Job, live_splits: "list[_Split]", run_map_task
    ) -> "list[_MapOutcome]":
        """Execute the map tasks, returning outcomes in split order.

        Backends (picked per job, all producing identical outcomes):

        * **process** — on ``parallelism="process"`` contexts, jobs whose
          whole map side is registered refs ship each split to a spawn
          worker: records travel by wire block (or plain pickling for
          HDFS records), the worker runs :func:`_execute_map_split` and
          returns the outcome plus its charge snapshot.  Real CPU
          parallelism — Python compute in map functions overlaps.
        * **thread** — on a multi-server topology the map tasks of
          different splits run concurrently on the shared scatter thread
          pool (overlapping simulated latency; the GIL still serializes
          compute).  Map/combine functions must be thread-safe; all
          in-repo jobs are pure functions of their input records.
        * **serial** — everything else runs inline.

        Results and *all* cost accounting stay in split order, so the
        simulated metrics are identical to serial execution (the wave's
        simulated makespan was always the parallel :meth:`_wave_time`
        model).  Any simulated charges a task does make are captured per
        task — scoped collectors on threads, worker-local collectors in
        processes — and folded back in split order, keeping them
        deterministic across backends and pool sizes.
        """
        if (
            self.ctx.parallelism == "process"
            and job.process_safe_map
            and len(live_splits) > 1
        ):
            from repro.cluster.procpool import shared_process_pool

            kind = _input_kind(job.input_source)
            refs = [
                fn_ref(
                    "mr.map_split",
                    {
                        "map": job.map_fn,
                        "finish": job.map_finish_fn,
                        "combine": job.combiner_fn,
                        "kind": kind,
                        "records": _encode_split_records(kind, split.records),
                    },
                )
                for split in live_splits
            ]
            outcomes = []
            for outcome, snap in shared_process_pool().run(refs):
                self.ctx.metrics.absorb_counts(snap)
                self.ctx.metrics.advance_time(snap.sim_time_s)
                outcomes.append(outcome)
            return outcomes
        if len(live_splits) > 1 and self.ctx.topology.parallel:
            from repro.cluster.executor import in_scatter, shared_pool

            if not in_scatter():
                from repro.serving.metrics import install_router

                router = install_router(self.ctx)

                def isolated(split: _Split):
                    with router.scoped() as collector:
                        outcome = run_map_task(split)
                    return outcome, collector.snapshot()

                pool = shared_pool().executor()
                captured = list(pool.map(isolated, live_splits))
                outcomes = []
                for outcome, snap in captured:
                    router.active.absorb_counts(snap)
                    self.ctx.metrics.advance_time(snap.sim_time_s)
                    outcomes.append(outcome)
                return outcomes
        return [run_map_task(split) for split in live_splits]

    def _run_reduce_wave(
        self,
        job: Job,
        reduce_jobs: "list[tuple[int, Node, list[tuple[Any, Any]]]]",
    ) -> "list[_ReduceOutcome]":
        """Execute the reduce tasks, returning outcomes in partition order.

        On ``parallelism="process"`` contexts, jobs whose reducer is a
        registered ref run each live partition in a spawn worker (the
        BFHM build's Golomb blob encoding is the hot path this buys back);
        everything else reduces inline — a thread wave would buy nothing,
        the GIL serializes pure-Python reduce compute anyway.  Outcomes
        and charge snapshots fold in partition order; all wave pricing
        stays with the caller, so the backends are metric-identical.
        """
        if (
            self.ctx.parallelism == "process"
            and job.process_safe_reduce
            and len(reduce_jobs) > 1
        ):
            from repro.cluster.procpool import shared_process_pool

            refs = [
                fn_ref(
                    "mr.reduce_partition",
                    {"reduce": job.reduce_fn, "pairs": pairs},
                )
                for _, _, pairs in reduce_jobs
            ]
            outcomes = []
            for outcome, snap in shared_process_pool().run(refs):
                self.ctx.metrics.absorb_counts(snap)
                self.ctx.metrics.advance_time(snap.sim_time_s)
                outcomes.append(outcome)
            return outcomes
        reduce_fn = _as_callable(job.reduce_fn)
        return [
            _execute_reduce_partition(reduce_fn, pairs)
            for _, _, pairs in reduce_jobs
        ]

    def _wave_time(self, task_times: "dict[int, list[float]]") -> float:
        """Makespan of locality-pinned tasks over per-node slots."""
        model = self.ctx.cost_model
        worst = 0.0
        for times in task_times.values():
            node_busy = sum(times) / model.task_slots_per_node + (
                model.mr_task_startup_s
            )
            worst = max(worst, node_busy)
        return worst

    # grouped-shuffle order (kept as a staticmethod alias for callers)
    _group_sorted = staticmethod(_group_sorted)

    # -- execution -------------------------------------------------------------------

    def run(self, job: Job) -> JobResult:
        """Run ``job`` to completion, advancing the simulated clock."""
        model = self.ctx.cost_model
        metrics = self.ctx.metrics
        result = JobResult(job.name)

        metrics.advance_time(model.mr_job_startup_s)

        if isinstance(job.input_source, TableInput):
            splits = self._table_splits(job.input_source)
        elif isinstance(job.input_source, HDFSInput):
            splits = self._hdfs_splits(job.input_source)
        elif isinstance(job.input_source, UnionTableInput):
            splits = self._union_splits(job.input_source)
        else:  # pragma: no cover - exhaustive over input types
            raise JobConfigurationError(
                f"unknown input source: {job.input_source!r}"
            )

        # ---- map phase ----
        map_fn = _as_callable(job.map_fn)
        finish_fn = _as_callable(job.map_finish_fn)
        combiner_fn = _as_callable(job.combiner_fn)

        def run_map_task(split: _Split) -> _MapOutcome:
            return _execute_map_split(map_fn, finish_fn, combiner_fn, split.records)

        live_splits = [split for split in splits if split.records]
        outcomes = self._run_map_wave(job, live_splits, run_map_task)

        map_outputs: list[tuple["Node", list[tuple[Any, Any]]]] = []
        task_times: dict[int, list[float]] = {}
        for split, outcome in zip(live_splits, outcomes):
            metrics.add_kv_reads(split.kv_cells)
            metrics.add_disk_read(split.input_bytes)
            task_time = (
                model.disk_seq_time(split.input_bytes)
                + model.cpu_time(len(split.records))
                + model.cpu_time(outcome.map_emitted)
            )
            task_times.setdefault(split.node.node_id, []).append(task_time)
            map_outputs.append((split.node, outcome.pairs))
            for name, amount in outcome.counters.items():
                result.counters[name] = result.counters.get(name, 0.0) + amount
            result.map_tasks += 1

        metrics.advance_time(self._wave_time(task_times))

        # ---- map-only jobs write directly from mappers ----
        if job.map_only:
            all_pairs = [pair for _, pairs in map_outputs for pair in pairs]
            self._write_output(job, all_pairs, map_outputs, result)
            result.sim_time_s = metrics.sim_time_s
            return result

        # ---- shuffle ----
        workers = self.ctx.cluster.workers
        reducer_nodes = [workers[r % len(workers)] for r in range(job.num_reducers)]
        partitions: list[list[tuple[Any, Any]]] = [
            [] for _ in range(job.num_reducers)
        ]
        shuffle_remote_bytes = 0
        for node, pairs in map_outputs:
            for key, value in pairs:
                reducer = job.partition_fn(key, job.num_reducers)
                partitions[reducer].append((key, value))
                if reducer_nodes[reducer].node_id != node.node_id:
                    shuffle_remote_bytes += sizeof(key) + sizeof(value)
        metrics.add_network(shuffle_remote_bytes)
        metrics.advance_time(model.network_time(shuffle_remote_bytes))
        result.shuffle_bytes = shuffle_remote_bytes

        # ---- reduce phase ----
        reduce_jobs = [
            (reducer_index, reducer_nodes[reducer_index], pairs)
            for reducer_index, pairs in enumerate(partitions)
            if pairs
        ]
        reduce_outcomes = self._run_reduce_wave(job, reduce_jobs)

        reduce_outputs: list[tuple["Node", list[tuple[Any, Any]]]] = []
        reduce_times: dict[int, list[float]] = {}
        for (_, node, pairs), outcome in zip(reduce_jobs, reduce_outcomes):
            metrics.record_peak("reducer_peak_bytes", outcome.grouped_bytes)
            reduce_times.setdefault(node.node_id, []).append(
                model.cpu_time(len(pairs)) + model.cpu_time(len(outcome.emitted))
            )
            reduce_outputs.append((node, outcome.emitted))
            for name, amount in outcome.counters.items():
                result.counters[name] = result.counters.get(name, 0.0) + amount
            result.reduce_tasks += 1

        metrics.advance_time(self._wave_time(reduce_times))

        all_pairs = [pair for _, pairs in reduce_outputs for pair in pairs]
        self._write_output(job, all_pairs, reduce_outputs, result)
        result.sim_time_s = metrics.sim_time_s
        return result

    # -- outputs ------------------------------------------------------------------

    def _write_output(
        self,
        job: Job,
        all_pairs: "list[tuple[Any, Any]]",
        placed_outputs: "list[tuple[Node, list[tuple[Any, Any]]]]",
        result: JobResult,
    ) -> None:
        model = self.ctx.cost_model
        metrics = self.ctx.metrics
        output = job.output

        if isinstance(output, CollectOutput):
            # ship to the driver on the master node
            remote = sum(
                sizeof(k) + sizeof(v)
                for node, pairs in placed_outputs
                for k, v in pairs
            )
            metrics.add_network(remote)
            metrics.advance_time(model.network_time(remote))
            result.collected = all_pairs
            return

        if isinstance(output, HDFSOutput):
            self.hdfs.delete_if_exists(output.path)
            self.hdfs.write_file(output.path, [list(pair) for pair in all_pairs])
            return

        if isinstance(output, TableOutput):
            from repro.store.cell import Cell

            table = self.store.backing(output.table_name)
            # materialize every emitted Put into cells first, then hand the
            # whole batch to the table in one apply_batch call (one family
            # check per family, one bisect per cell; split timing and the
            # metered payload are identical to the old per-cell loop)
            cells: list[Cell] = []
            for node, pairs in placed_outputs:
                for _, put in pairs:
                    timestamp = (
                        put.timestamp
                        if put.timestamp is not None
                        else self.ctx.next_timestamp()
                    )
                    for family, qualifier, value in put.cells:
                        cells.append(
                            Cell(put.row, family, qualifier, value, timestamp)
                        )
            payload = sum(cell.serialized_size() for cell in cells)
            table.apply_batch(cells)
            # task -> region server transfer (+ WAL replication copies,
            # unless the output skips the WAL like HBase temp tables)
            copies = 1 if output.skip_wal else model.hdfs_replication
            remote = payload * copies
            metrics.add_network(remote)
            metrics.advance_time(model.network_time(remote))
            table.flush_all()
            return

        raise JobConfigurationError(f"unknown output sink: {output!r}")
