"""Binding a stored table to the rank-join view of a relation.

A :class:`RelationBinding` names the table, the column family holding its
data, and the two columns playing the join-attribute and score-attribute
roles (§1.1).  The ``signature`` uniquely identifies the (table, join
column, score column) triple, which is the unit the paper builds one index
per — and doubles as the column-family name inside shared index tables
(§4.1.1: "the IJLMR index for each indexed table is stored as a separate
column family in one big table").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.serialization import decode_float, decode_str
from repro.common.types import ScoredRow
from repro.errors import QueryError
from repro.store.cell import RowResult
from repro.store.client import Store
from repro.store.table import StoreTable


@dataclass(frozen=True, slots=True)
class RelationBinding:
    """One relation's role in a rank join."""

    table: str
    join_column: str
    score_column: str
    family: str = "d"
    alias: "str | None" = None

    @property
    def signature(self) -> str:
        """Unique id of the (table, join column, score column) triple."""
        return f"{self.table}__{self.join_column}__{self.score_column}"

    @property
    def display_name(self) -> str:
        return self.alias or self.table


def row_to_scored(binding: RelationBinding, row: RowResult) -> ScoredRow:
    """Decode a stored row into the rank-join view."""
    join_raw = row.value(binding.family, binding.join_column)
    score_raw = row.value(binding.family, binding.score_column)
    if join_raw is None or score_raw is None:
        raise QueryError(
            f"row {row.row!r} of {binding.table!r} lacks join/score columns "
            f"{binding.join_column!r}/{binding.score_column!r}"
        )
    payload = {
        cell.qualifier: cell.value
        for cell in row.family_cells(binding.family)
        if cell.qualifier not in (binding.join_column, binding.score_column)
    }
    return ScoredRow(
        row_key=row.row,
        join_value=decode_str(join_raw),
        score=decode_float(score_raw),
        payload=payload,
    )


def load_relation(store: Store, binding: RelationBinding) -> list[ScoredRow]:
    """Unmetered full view of a relation (ground truth / index pre-passes)."""
    table: StoreTable = store.backing(binding.table)
    return [
        row_to_scored(binding, row)
        for row in table.all_rows(families={binding.family})  # lint: disable=RL301 (test/benchmark data loading helper; never on a measured query path)
    ]
