"""The naive rank join: full join, then rank, then cut (§1.1).

"A naive approach would first compute the join result, then rank and select
the top-k tuples" — this is both the semantic definition of the query and
the ground truth every algorithm's recall is validated against.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from repro.common.functions import AggregateFunction
from repro.common.types import JoinTuple, ScoredRow, top_k_sorted


def full_join(
    left: Iterable[ScoredRow],
    right: Iterable[ScoredRow],
    function: AggregateFunction,
) -> list[JoinTuple]:
    """The complete equi-join result with aggregate scores."""
    by_value: dict[str, list[ScoredRow]] = defaultdict(list)
    for row in right:
        by_value[row.join_value].append(row)
    results: list[JoinTuple] = []
    for lrow in left:
        for rrow in by_value.get(lrow.join_value, ()):
            results.append(
                JoinTuple(
                    left_key=lrow.row_key,
                    right_key=rrow.row_key,
                    join_value=lrow.join_value,
                    score=function(lrow.score, rrow.score),
                    left_score=lrow.score,
                    right_score=rrow.score,
                )
            )
    return results


def naive_rank_join(
    left: Iterable[ScoredRow],
    right: Iterable[ScoredRow],
    function: AggregateFunction,
    k: int,
) -> list[JoinTuple]:
    """Ground-truth top-k join result, deterministically ordered."""
    return top_k_sorted(full_join(left, right, function), k)


def kth_score(results: list[JoinTuple], k: int) -> "float | None":
    """Score of the k-th tuple of a sorted result list, if it exists."""
    if len(results) < k:
        return None
    return results[k - 1].score
