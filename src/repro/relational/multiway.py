"""Naive n-way rank join — the multi-way ground truth."""

from __future__ import annotations

from collections import defaultdict
from itertools import product
from typing import Iterable, Sequence

from repro.common.functions import AggregateFunction
from repro.common.multiway import MultiJoinTuple, combine_rows, top_k_multi
from repro.common.types import ScoredRow
from repro.errors import QueryError


def full_join_multi(
    relations: "Sequence[Iterable[ScoredRow]]",
    function: AggregateFunction,
) -> list[MultiJoinTuple]:
    """The complete n-way equi-join with aggregate scores."""
    if len(relations) < 2:
        raise QueryError(f"multi-way join needs >= 2 relations, got {len(relations)}")
    by_value: list[dict[str, list[ScoredRow]]] = []
    for relation in relations:
        index: dict[str, list[ScoredRow]] = defaultdict(list)
        for row in relation:
            index[row.join_value].append(row)
        by_value.append(index)

    common_values = set(by_value[0])
    for index in by_value[1:]:
        common_values &= set(index)

    results: list[MultiJoinTuple] = []
    for value in common_values:
        for rows in product(*(index[value] for index in by_value)):
            results.append(combine_rows(rows, function))
    return results


def naive_rank_join_multi(
    relations: "Sequence[Iterable[ScoredRow]]",
    function: AggregateFunction,
    k: int,
) -> list[MultiJoinTuple]:
    """Ground-truth n-way top-k join result."""
    return top_k_multi(full_join_multi(relations, function), k)
