"""Relation bindings and the naive ground-truth rank join."""

from repro.relational.binding import RelationBinding, load_relation, row_to_scored
from repro.relational.naive import naive_rank_join

__all__ = [
    "RelationBinding",
    "load_relation",
    "row_to_scored",
    "naive_rank_join",
]
