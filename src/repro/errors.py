"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so that
callers can catch library failures with a single ``except`` clause while
still being able to discriminate finer-grained conditions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class StoreError(ReproError):
    """Base class for NoSQL store errors."""


class TableNotFoundError(StoreError):
    """A table was requested that does not exist in the store."""

    def __init__(self, table_name: str) -> None:
        super().__init__(f"table not found: {table_name!r}")
        self.table_name = table_name


class TableExistsError(StoreError):
    """A table was created that already exists."""

    def __init__(self, table_name: str) -> None:
        super().__init__(f"table already exists: {table_name!r}")
        self.table_name = table_name


class ColumnFamilyNotFoundError(StoreError):
    """A column family was referenced that is not part of the table schema."""

    def __init__(self, table_name: str, family: str) -> None:
        super().__init__(
            f"column family {family!r} not found in table {table_name!r}"
        )
        self.table_name = table_name
        self.family = family


class RegionError(StoreError):
    """A row key fell outside every region, or region metadata is corrupt."""


class WALError(StoreError):
    """A write-ahead-log invariant was violated (e.g. a checkpoint moving
    backwards or past the end of the log)."""


class InvalidMutationError(StoreError):
    """A Put/Delete was malformed (empty row key, no cells, bad timestamp)."""


class FilterError(StoreError):
    """A server-side filter was misconfigured."""


class MapReduceError(ReproError):
    """Base class for MapReduce framework errors."""


class JobConfigurationError(MapReduceError):
    """A job was submitted with an invalid or incomplete configuration."""


class HDFSError(MapReduceError):
    """Simulated HDFS failure (missing file, duplicate create, bad path)."""


class QueryError(ReproError):
    """Base class for query-layer errors."""


class ParseError(QueryError):
    """The SQL-like query text could not be parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        suffix = f" (at position {position})" if position is not None else ""
        super().__init__(message + suffix)
        self.position = position


class PlanningError(QueryError):
    """The planner could not produce an execution plan for the query."""


class IndexError_(ReproError):
    """Base class for index build/consistency errors (trailing underscore
    avoids shadowing the builtin)."""


class IndexNotBuiltError(IndexError_):
    """Query processing was attempted against an index that was never built."""

    def __init__(self, index_name: str) -> None:
        super().__init__(f"index not built: {index_name!r}")
        self.index_name = index_name


class ServingError(ReproError):
    """Base class for query-serving (admission / scheduling) errors."""


class ServerOverloadedError(ServingError):
    """Admission control shed the query: the bounded queue was full."""

    def __init__(self, pending: int, limit: int) -> None:
        super().__init__(
            f"server overloaded: {pending} queries in flight or queued "
            f"(limit {limit}); query shed"
        )
        self.pending = pending
        self.limit = limit


class DeadlineExceededError(ServingError):
    """The query's wall-clock deadline expired before execution started."""

    def __init__(self, waited_s: float, deadline_s: float) -> None:
        super().__init__(
            f"deadline exceeded: waited {waited_s:.3f}s past a "
            f"{deadline_s:.3f}s deadline"
        )
        self.waited_s = waited_s
        self.deadline_s = deadline_s


class BudgetExceededError(ServingError):
    """The planner priced the query above its admission budget."""

    def __init__(self, estimated: float, budget: float, objective: str) -> None:
        super().__init__(
            f"budget exceeded: plan estimates {estimated:.6g} {objective} "
            f"against a budget of {budget:.6g}; query rejected"
        )
        self.estimated = estimated
        self.budget = budget
        self.objective = objective


class ServerClosedError(ServingError):
    """A query was submitted to a server that has been shut down."""


class StalenessBoundExceededError(ServingError):
    """An input table's index lag exceeded the server's staleness bound
    under the ``shed`` policy, so the query was rejected."""

    def __init__(self, table: str, lag: int, bound: int) -> None:
        super().__init__(
            f"staleness bound exceeded: table {table!r} has {lag} unapplied "
            f"mutations against a bound of {bound}; query shed"
        )
        self.table = table
        self.lag = lag
        self.bound = bound


class MaintenanceError(ReproError):
    """Base class for asynchronous index-maintenance errors."""


class WorkerCrashError(MaintenanceError):
    """A maintenance worker crashed (normally injected by the fault-
    injection framework at a chosen drain point)."""

    def __init__(self, point: str, occurrence: int) -> None:
        super().__init__(
            f"injected worker crash at drain point {point!r} "
            f"(occurrence {occurrence})"
        )
        self.point = point
        self.occurrence = occurrence


class DeadLetterError(MaintenanceError):
    """A logged mutation exhausted its retries and was dead-lettered."""


class SketchError(ReproError):
    """Base class for probabilistic-sketch errors (Bloom filters, Golomb)."""


class BitstreamError(SketchError):
    """A bit stream was read past its end or written inconsistently."""


class CounterUnderflowError(SketchError):
    """A counting Bloom filter was asked to remove an item it never saw."""
