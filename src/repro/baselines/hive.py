"""The Hive-style baseline (§3.1).

"In Hive, rank join processing consists of two MapReduce jobs plus a final
stage.  The first job computes and materializes the join result set, while
the second one computes the score of the join result set tuples and stores
them sorted on their score; a third, non-MapReduce stage then fetches the
k highest-ranked results from the final list."

Crucially, Hive performs **no early projection**: the join job ships and
materializes complete rows (all payload columns), which is what makes its
bandwidth and time the worst of the lot.
"""

from __future__ import annotations

from repro.common.serialization import decode_float, decode_str, sizeof
from repro.common.types import JoinTuple
from repro.core.base import RankJoinAlgorithm, _ExecutionDetails
from repro.mapreduce.job import (
    HDFSInput,
    HDFSOutput,
    Job,
    TaskContext,
    UnionTableInput,
)
from repro.query.spec import RankJoinQuery
from repro.relational.binding import RelationBinding
from repro.store.cell import RowResult


class HiveRankJoin(RankJoinAlgorithm):
    """Two full MapReduce jobs + a fetch stage; no indices."""

    name = "HIVE"

    def _run(self, query: RankJoinQuery, details: _ExecutionDetails) -> list[JoinTuple]:
        join_path = f"hive/join-{query.left.signature}-{query.right.signature}"
        sorted_path = f"{join_path}-sorted"
        self.platform.hdfs.delete_if_exists(join_path)
        self.platform.hdfs.delete_if_exists(sorted_path)

        self._join_job(query, join_path)
        self._sort_job(query, join_path, sorted_path)
        results = self._fetch_stage(sorted_path, query.k)
        details.set("join_records", self._join_records)
        return results

    # -- job 1: materialize the full join result ------------------------------

    def _join_job(self, query: RankJoinQuery, output_path: str) -> None:
        bindings = {query.left.table: query.left, query.right.table: query.right}
        left_table = query.left.table

        def map_fn(row_key: str, tagged, task: TaskContext) -> None:
            table_name, row = tagged
            binding = bindings[table_name]
            record = _full_record(binding, row_key, row)
            if record is None:
                task.bump("skipped_rows")
                return
            task.emit(record[1], (table_name, record))  # key: join value

        def reduce_fn(join_value: str, values: list, task: TaskContext) -> None:
            lefts = [record for table, record in values if table == left_table]
            rights = [record for table, record in values if table != left_table]
            for left in lefts:
                for right in rights:
                    # the full joined row is materialized: all columns of both
                    task.emit(
                        join_value,
                        [left[0], right[0], join_value, left[2], right[2],
                         left[3], right[3]],
                    )
                    task.bump("join_records")

        job = Job(
            name="hive-join",
            input_source=UnionTableInput.of(query.left.table, query.right.table),
            map_fn=map_fn,
            reduce_fn=reduce_fn,
            num_reducers=len(self.platform.ctx.cluster.workers),
            output=HDFSOutput(output_path),
        )
        result = self.platform.runner.run(job)
        self._join_records = result.counters.get("join_records", 0.0)

    # -- job 2: score + total order through one reducer --------------------------

    def _sort_job(self, query: RankJoinQuery, join_path: str, sorted_path: str) -> None:
        function = query.function

        def map_fn(_index: int, record, task: TaskContext) -> None:
            _join_value, payload = record
            left_key, right_key, join_value, lscore, rscore, lcols, rcols = payload
            score = function(lscore, rscore)
            # negated score => the single reducer sees descending score order
            task.emit(-score, [left_key, right_key, join_value, lscore, rscore,
                               lcols, rcols])

        def reduce_fn(neg_score: float, values: list, task: TaskContext) -> None:
            for value in values:
                task.emit(neg_score, value)

        job = Job(
            name="hive-sort",
            input_source=HDFSInput(join_path),
            map_fn=map_fn,
            reduce_fn=reduce_fn,
            num_reducers=1,  # Hive's global ORDER BY bottleneck
            output=HDFSOutput(sorted_path),
        )
        self.platform.runner.run(job)

    # -- final non-MapReduce stage: fetch the top-k -----------------------------------

    def _fetch_stage(self, sorted_path: str, k: int) -> list[JoinTuple]:
        ctx = self.platform.ctx
        results: list[JoinTuple] = []
        fetched_bytes = 0
        for record in self.platform.hdfs.read_file(sorted_path):
            if len(results) >= k:
                break
            neg_score, payload = record
            left_key, right_key, join_value, lscore, rscore, _lcols, _rcols = payload
            results.append(
                JoinTuple(
                    left_key=left_key,
                    right_key=right_key,
                    join_value=join_value,
                    score=-neg_score,
                    left_score=lscore,
                    right_score=rscore,
                )
            )
            fetched_bytes += sizeof(record)
        ctx.metrics.add_network(fetched_bytes)
        ctx.metrics.advance_time(
            ctx.cost_model.rpc_latency_s + ctx.cost_model.network_time(fetched_bytes)
        )
        return results


def _full_record(binding: RelationBinding, row_key: str, row: RowResult):
    """``[row_key, join_value, score, all_other_columns]`` — the whole row."""
    join_raw = row.value(binding.family, binding.join_column)
    score_raw = row.value(binding.family, binding.score_column)
    if join_raw is None or score_raw is None:
        return None
    columns = {
        cell.qualifier: cell.value
        for cell in row.family_cells(binding.family)
        if cell.qualifier not in (binding.join_column, binding.score_column)
    }
    return [row_key, decode_str(join_raw), decode_float(score_raw), columns]
