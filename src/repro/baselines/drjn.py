"""DRJN — Doulkeridis et al. (ICDE 2012), re-engineered for HBase (§7.1).

The DRJN index is a 2-D matrix: join-value partitions × score partitions,
each cell counting a relation's tuples.  Following the paper's adaptation:

* all buckets of one score range are stored as columns of a single index
  row, so one ``Get`` retrieves a whole batch of buckets;
* the pull phase runs as a lightweight map-only Hadoop job with a custom
  server-side score filter, writing its output to a temporary HBase table
  which the coordinator then scans and joins.

Query processing loops: (i) fetch matrix rows in decreasing score order,
(ii) estimate the join cardinality under the uniform-frequency assumption,
(iii) once the estimate reaches ``k``, pull every tuple scoring above the
current bucket boundary and join; (iv) terminate when the k-th actual
result provably beats anything below the boundary.  Each pull job scans the
full base tables — the source of DRJN's dollar-cost and latency gap.
"""

from __future__ import annotations

import struct

from repro.common.serialization import decode_float, decode_str, encode_str
from repro.common.types import JoinTuple, ScoredRow
from repro.core.base import IndexBuildReport, RankJoinAlgorithm, _ExecutionDetails
from repro.core.indexes import DRJN_TABLE, ensure_index_table, family_built
from repro.errors import IndexNotBuiltError
from repro.mapreduce.job import Job, TableInput, TableOutput, TaskContext
from repro.query.spec import RankJoinQuery
from repro.relational.binding import RelationBinding
from repro.sketches.hashing import hash_to_range
from repro.sketches.histogram import bucket_bounds, score_to_bucket
from repro.store.cell import RowResult
from repro.store.client import Get, Put, Scan
from repro.store.filters import Filter

SCORE_EPSILON = 1e-12
META_ROW = "meta"
_CELL = struct.Struct(">Idd")  # count, min score, max score

DEFAULT_SCORE_BUCKETS = 100
DEFAULT_JOIN_PARTITIONS = 64


def _score_row_key(bucket: int) -> str:
    return f"{bucket:05d}"


class _ScoreBandFilter(Filter):
    """Server-side filter keeping rows with ``low <= score < high``.

    The incremental pull bands avoid re-shipping tuples already pulled in
    earlier rounds (the scan itself still reads everything — that cost is
    inherent to DRJN's design).
    """

    def __init__(self, family: str, qualifier: str, low: float, high: "float | None") -> None:
        self.family = family
        self.qualifier = qualifier
        self.low = low
        self.high = high

    def matches(self, row: RowResult) -> bool:
        raw = row.value(self.family, self.qualifier)
        if raw is None:
            return False
        score = decode_float(raw)
        if score < self.low:
            return False
        return self.high is None or score < self.high


class DRJNRankJoin(RankJoinAlgorithm):
    """The DRJN 2-D histogram index + bound/pull query processing."""

    name = "DRJN"

    def __init__(
        self,
        platform,
        num_score_buckets: int = DEFAULT_SCORE_BUCKETS,
        num_join_partitions: int = DEFAULT_JOIN_PARTITIONS,
    ) -> None:
        super().__init__(platform)
        self.num_score_buckets = num_score_buckets
        self.num_join_partitions = num_join_partitions

    # -- index build -----------------------------------------------------------

    def _index_exists(self, binding: RelationBinding) -> bool:
        # queries read the matrix meta row from the store each run, so a
        # store-present family needs no in-memory rehydration (the stored
        # matrix's partitioning wins over this instance's configuration)
        return family_built(self.platform, DRJN_TABLE, binding.signature)

    def _build_index(self, binding: RelationBinding) -> IndexBuildReport:
        platform = self.platform
        signature = binding.signature
        num_score_buckets = self.num_score_buckets
        num_join_partitions = self.num_join_partitions
        ensure_index_table(platform, DRJN_TABLE, signature)

        def map_fn(row_key: str, row: RowResult, task: TaskContext) -> None:
            join_raw = row.value(binding.family, binding.join_column)
            score_raw = row.value(binding.family, binding.score_column)
            if join_raw is None or score_raw is None:
                task.bump("skipped_rows")
                return
            join_value = decode_str(join_raw)
            score = decode_float(score_raw)
            partition = hash_to_range(join_value, num_join_partitions)
            bucket = score_to_bucket(score, num_score_buckets)
            task.emit(f"c|{bucket:05d}|{partition:06d}", score)
            task.emit(f"d|{partition:06d}", join_value)

        def reduce_fn(key: str, values: list, task: TaskContext) -> None:
            kind, _, rest = key.partition("|")
            if kind == "c":
                bucket_text, _, partition_text = rest.partition("|")
                put = Put(_score_row_key(int(bucket_text)))
                put.add(
                    signature,
                    f"p{int(partition_text):06d}",
                    _CELL.pack(len(values), min(values), max(values)),
                )
                task.emit(put.row, put)
            else:
                put = Put(META_ROW)
                put.add(
                    signature,
                    f"p{int(rest):06d}",
                    encode_str(str(len(set(values)))),
                )
                task.emit(put.row, put)

        job = Job(
            name=f"drjn-index-{signature}",
            input_source=TableInput.of(binding.table, {binding.family}),
            map_fn=map_fn,
            reduce_fn=reduce_fn,
            num_reducers=max(1, len(platform.ctx.cluster.workers)),
            output=TableOutput(DRJN_TABLE),
        )

        def build() -> int:
            platform.runner.run(job)
            table = platform.store.backing(DRJN_TABLE)
            return sum(
                cell.serialized_size()
                for row in table.all_rows(families={signature})  # lint: disable=RL301 (index-size accounting for the build report; the build job itself is metered)
                for cell in row
            )

        return self._metered_build(self.name, signature, build)

    # -- index reads ---------------------------------------------------------------

    def _read_meta(self, signature: str) -> dict[int, int]:
        """Distinct-join-value counts per partition (one metered Get)."""
        htable = self.platform.store.table(DRJN_TABLE)
        row = htable.get(Get(META_ROW, families={signature}))
        if row.empty:
            raise IndexNotBuiltError(f"DRJN:{signature}")
        return {
            int(cell.qualifier[1:]): int(decode_str(cell.value))
            for cell in row.family_cells(signature)
        }

    def _fetch_score_row(self, signature: str, bucket: int) -> dict[int, tuple[int, float, float]]:
        """One metered Get of a full matrix row (a batch of buckets)."""
        htable = self.platform.store.table(DRJN_TABLE)
        row = htable.get(Get(_score_row_key(bucket), families={signature}))
        cells = {}
        for cell in row.family_cells(signature):
            count, low, high = _CELL.unpack(cell.value)
            cells[int(cell.qualifier[1:])] = (count, low, high)
        return cells

    # -- pull phase --------------------------------------------------------------------

    def _pull_job(
        self,
        binding: RelationBinding,
        low: float,
        high: "float | None",
        temp_table: str,
    ) -> None:
        """Map-only job shipping tuples with ``low <= score < high`` into a
        temporary table (scans the entire base table to find them)."""
        platform = self.platform
        signature = binding.signature
        band = _ScoreBandFilter(binding.family, binding.score_column, low, high)

        def map_fn(row_key: str, row: RowResult, task: TaskContext) -> None:
            if not band.matches(row):
                return
            join_raw = row.value(binding.family, binding.join_column)
            score_raw = row.value(binding.family, binding.score_column)
            put = Put(row_key)
            put.add(signature, "j", join_raw)
            put.add(signature, "s", score_raw)
            task.emit(row_key, put)
            task.bump("pulled")

        job = Job(
            name=f"drjn-pull-{signature}",
            input_source=TableInput.of(binding.table, {binding.family}),
            map_fn=map_fn,
            output=TableOutput(temp_table, skip_wal=True),
        )
        platform.runner.run(job)

    def _scan_temp(self, signature: str, temp_table: str) -> list[ScoredRow]:
        """Coordinator fetch of the pulled tuples (metered scan)."""
        htable = self.platform.store.table(temp_table)
        tuples = []
        # the temp table is always drained in full, so the scan can fan
        # out per region server on multi-server topologies (scatter is a
        # no-op on the default single server)
        for row in htable.scan(Scan(families={signature}, caching=500, scatter=True)):
            join_raw = row.value(signature, "j")
            score_raw = row.value(signature, "s")
            if join_raw is None or score_raw is None:
                continue
            tuples.append(
                ScoredRow(row.row, decode_str(join_raw), decode_float(score_raw))
            )
        return tuples

    # -- query processing ------------------------------------------------------------------

    def _run(self, query: RankJoinQuery, details: _ExecutionDetails) -> list[JoinTuple]:
        platform = self.platform
        signatures = (query.left.signature, query.right.signature)
        bindings = (query.left, query.right)
        function = query.function
        k = query.k

        meta = tuple(self._read_meta(signature) for signature in signatures)
        fetched: tuple[dict[int, dict[int, tuple[int, float, float]]], ...] = ({}, {})
        pulled: tuple[list[ScoredRow], list[ScoredRow]] = ([], [])
        pulled_low = [1.0 + SCORE_EPSILON, 1.0 + SCORE_EPSILON]

        temp_table = f"drjn_tmp_{signatures[0]}_{signatures[1]}"[:120]
        if platform.store.has_table(temp_table):
            # defensive: a prior crashed run left its scratch table behind
            platform.store.drop_table(temp_table)  # lint: disable=RL403 (pre-create sweep of a leftover table, not this run's cleanup)
        platform.store.create_table(temp_table, set(signatures))

        estimate = 0.0
        next_bucket = 0
        results: list[JoinTuple] = []
        rounds = 0

        try:
            results, rounds, next_bucket = self._drive_rounds(
                query, signatures, bindings, meta, fetched, pulled,
                pulled_low, temp_table,
            )
        finally:
            platform.store.drop_table(temp_table)
        details.set("rounds", rounds)
        details.set("pulled_left", len(pulled[0]))
        details.set("pulled_right", len(pulled[1]))
        return results[: k]

    def _drive_rounds(
        self,
        query: RankJoinQuery,
        signatures,
        bindings,
        meta,
        fetched,
        pulled,
        pulled_low,
        temp_table: str,
    ) -> "tuple[list[JoinTuple], int, int]":
        """The DRJN fetch/estimate/pull/join round loop (§ fig. 5 protocol).

        Split out of :meth:`_run` so the scratch-table lifetime there is a
        flat create / ``try`` / ``finally: drop`` — a mid-round failure
        (store fault injection, interrupted run) no longer leaks the
        ``drjn_tmp_*`` table into later queries' scans.
        """
        function = query.function
        k = query.k
        estimate = 0.0
        next_bucket = 0
        results: list[JoinTuple] = []
        rounds = 0

        while next_bucket < self.num_score_buckets:
            rounds += 1
            # (i) fetch the next batch of matrix rows for both relations
            batch_end = next_bucket
            while estimate < k and batch_end < self.num_score_buckets:
                for side in (0, 1):
                    cells = self._fetch_score_row(signatures[side], batch_end)
                    if cells:
                        fetched[side][batch_end] = cells
                # (ii) estimate the newly visible join combinations
                estimate = self._estimate(fetched, meta)
                batch_end += 1
            next_bucket = batch_end

            # (iii) pull all tuples above the current score boundary
            bound = bucket_bounds(next_bucket - 1, self.num_score_buckets)[0]
            for side in (0, 1):
                if bound < pulled_low[side]:
                    self._pull_job(
                        bindings[side], bound,
                        pulled_low[side] if pulled_low[side] <= 1.0 else None,
                        temp_table,
                    )
                    pulled_low[side] = bound
            for side in (0, 1):
                pulled[side].clear()
            pulled[0].extend(self._scan_temp(signatures[0], temp_table))
            pulled[1].extend(self._scan_temp(signatures[1], temp_table))

            # join at the coordinator
            results = _hash_join(pulled[0], pulled[1], function)

            # (iv) termination: k results, k-th beats anything below bound
            if len(results) >= k:
                top_upper = (
                    bucket_bounds(0, self.num_score_buckets)[1],
                    bucket_bounds(0, self.num_score_buckets)[1],
                )
                unseen_best = max(
                    function(bound, top_upper[1]), function(top_upper[0], bound)
                )
                if results[k - 1].score >= unseen_best - SCORE_EPSILON:
                    break
            if next_bucket >= self.num_score_buckets:
                break
            estimate = 0.0  # force the next round to fetch deeper rows

        return results, rounds, next_bucket

    def _estimate(self, fetched, meta) -> float:
        """Uniform-frequency cardinality estimate over fetched bucket pairs."""
        total = 0.0
        for left_cells in fetched[0].values():
            for right_cells in fetched[1].values():
                for partition, (lcount, _, _) in left_cells.items():
                    right = right_cells.get(partition)
                    if right is None:
                        continue
                    distinct = max(
                        meta[0].get(partition, 1), meta[1].get(partition, 1), 1
                    )
                    total += lcount * right[0] / distinct
        return total


def _hash_join(
    left: "list[ScoredRow]", right: "list[ScoredRow]", function
) -> list[JoinTuple]:
    by_value: dict[str, list[ScoredRow]] = {}
    for row in right:
        by_value.setdefault(row.join_value, []).append(row)
    results = []
    for lrow in left:
        for rrow in by_value.get(lrow.join_value, ()):
            results.append(
                JoinTuple(
                    left_key=lrow.row_key,
                    right_key=rrow.row_key,
                    join_value=lrow.join_value,
                    score=function(lrow.score, rrow.score),
                    left_score=lrow.score,
                    right_score=rrow.score,
                )
            )
    results.sort(key=JoinTuple.sort_key)
    return results
