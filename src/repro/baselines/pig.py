"""The Pig-style baseline (§3.1).

Pig's optimizer "pushes projections and top-k (STOP AFTER) operators as
early in the physical plan as possible".  Three MapReduce jobs:

1. **Join** — mappers strip unrelated columns (early projection) and emit
   rows keyed by join value; reducers produce the join result into HDFS.
2. **Sampling** — samples the join-result file and computes quantiles for
   a balanced ORDER BY partitioner.
3. **Top-k** — mappers emit score-keyed records, a combiner stage produces
   local top-k lists (here: the map-finish hook, Pig's in-task combiner),
   and a sole reducer merges them into the final top-k.
"""

from __future__ import annotations

from repro.common.serialization import decode_float, decode_str
from repro.common.types import JoinTuple
from repro.core.base import RankJoinAlgorithm, _ExecutionDetails
from repro.mapreduce.job import (
    CollectOutput,
    HDFSInput,
    HDFSOutput,
    Job,
    TaskContext,
    UnionTableInput,
)
from repro.query.spec import RankJoinQuery
from repro.sketches.hashing import hash_to_range

#: sampling rate of the ORDER BY balancing job
SAMPLE_RATE = 0.01


class PigRankJoin(RankJoinAlgorithm):
    """Three MapReduce jobs with early projection and combiner top-k."""

    name = "PIG"

    def _run(self, query: RankJoinQuery, details: _ExecutionDetails) -> list[JoinTuple]:
        join_path = f"pig/join-{query.left.signature}-{query.right.signature}"
        self.platform.hdfs.delete_if_exists(join_path)

        self._join_job(query, join_path)
        quantiles = self._sampling_job(query, join_path)
        results = self._topk_job(query, join_path, quantiles)
        details.set("quantiles", len(quantiles))
        return results

    # -- job 1: join with early projection ------------------------------------

    def _join_job(self, query: RankJoinQuery, output_path: str) -> None:
        bindings = {query.left.table: query.left, query.right.table: query.right}
        left_table = query.left.table
        function = query.function

        def map_fn(row_key: str, tagged, task: TaskContext) -> None:
            table_name, row = tagged
            binding = bindings[table_name]
            join_raw = row.value(binding.family, binding.join_column)
            score_raw = row.value(binding.family, binding.score_column)
            if join_raw is None or score_raw is None:
                task.bump("skipped_rows")
                return
            # early projection: only (row key, join value, score) survive
            task.emit(
                decode_str(join_raw),
                (table_name, [row_key, decode_float(score_raw)]),
            )

        def reduce_fn(join_value: str, values: list, task: TaskContext) -> None:
            lefts = [record for table, record in values if table == left_table]
            rights = [record for table, record in values if table != left_table]
            for left_key, lscore in lefts:
                for right_key, rscore in rights:
                    task.emit(
                        join_value,
                        [left_key, right_key, join_value, lscore, rscore,
                         function(lscore, rscore)],
                    )

        job = Job(
            name="pig-join",
            input_source=UnionTableInput.of(query.left.table, query.right.table),
            map_fn=map_fn,
            reduce_fn=reduce_fn,
            num_reducers=len(self.platform.ctx.cluster.workers),
            output=HDFSOutput(output_path),
        )
        self.platform.runner.run(job)

    # -- job 2: sampling for the balanced ORDER BY partitioner ---------------------

    def _sampling_job(self, query: RankJoinQuery, join_path: str) -> list[float]:
        workers = len(self.platform.ctx.cluster.workers)

        def map_fn(index: int, record, task: TaskContext) -> None:
            # deterministic 1% sample keyed on the record position
            if hash_to_range(str(index), 10_000) < int(SAMPLE_RATE * 10_000):
                _join_value, payload = record
                task.emit(0, payload[5])  # the join score

        def reduce_fn(_key: int, scores: list, task: TaskContext) -> None:
            ordered = sorted(scores)
            if not ordered:
                return
            for i in range(1, workers):
                task.emit("quantile", ordered[i * len(ordered) // workers])

        job = Job(
            name="pig-sample",
            input_source=HDFSInput(join_path),
            map_fn=map_fn,
            reduce_fn=reduce_fn,
            num_reducers=1,
            output=CollectOutput(),
        )
        result = self.platform.runner.run(job)
        return sorted(value for _, value in result.collected)

    # -- job 3: combiner top-k into a sole reducer -------------------------------------

    def _topk_job(
        self, query: RankJoinQuery, join_path: str, quantiles: list[float]
    ) -> list[JoinTuple]:
        k = query.k

        def map_fn(_index: int, record, task: TaskContext) -> None:
            _join_value, payload = record
            top: list = task.state.setdefault("topk", [])
            top.append(payload)
            top.sort(key=lambda p: -p[5])
            del top[k:]

        def map_finish(task: TaskContext) -> None:
            # Pig's combiner: only the local top-k list leaves the task
            for payload in task.state.get("topk", ()):
                task.emit("topk", payload)

        def reduce_fn(_key: str, values: list, task: TaskContext) -> None:
            merged = sorted(values, key=lambda p: -p[5])
            for payload in merged[:k]:
                task.emit("final", payload)

        job = Job(
            name="pig-topk",
            input_source=HDFSInput(join_path),
            map_fn=map_fn,
            map_finish_fn=map_finish,
            reduce_fn=reduce_fn,
            num_reducers=1,
            output=CollectOutput(),
        )
        result = self.platform.runner.run(job)
        return [
            JoinTuple(
                left_key=payload[0],
                right_key=payload[1],
                join_value=payload[2],
                score=payload[5],
                left_score=payload[3],
                right_score=payload[4],
            )
            for _, payload in result.collected
        ]
