"""Baseline rank-join approaches: Hive, Pig, and DRJN (§3, §7.1)."""

from repro.baselines.drjn import DRJNRankJoin
from repro.baselines.hive import HiveRankJoin
from repro.baselines.pig import PigRankJoin

__all__ = ["DRJNRankJoin", "HiveRankJoin", "PigRankJoin"]
