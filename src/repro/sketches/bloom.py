"""Bloom filter variants.

Three filters are provided:

* :class:`BloomFilter` — the classic k-hash bitmap filter (Bloom, 1970),
  used in tests and available as a general substrate;
* :class:`CountingBloomFilter` — per-position counters supporting deletion
  and multiplicity estimation;
* :class:`SingleHashBloomFilter` — the single-hash-function flavour the
  BFHM bucket builds on (§5.1): one hash per item keeps the per-position
  false-positive accounting simple (the α compensation of §5.3 assumes it)
  at the cost of a sparser, larger bitmap — which is why the paper pairs it
  with Golomb compression.
"""

from __future__ import annotations

import math

from repro.errors import CounterUnderflowError, SketchError
from repro.sketches.hashing import double_hashes, hash_to_range


def optimal_bit_count(capacity: int, fp_rate: float) -> int:
    """Bits needed for ``capacity`` items at ``fp_rate`` (classic formula)."""
    if capacity <= 0:
        raise SketchError(f"capacity must be positive: {capacity}")
    if not 0.0 < fp_rate < 1.0:
        raise SketchError(f"fp_rate must be in (0, 1): {fp_rate}")
    bits = -capacity * math.log(fp_rate) / (math.log(2) ** 2)
    return max(8, math.ceil(bits))


def optimal_hash_count(bit_count: int, capacity: int) -> int:
    """Optimal number of hash functions ``k = (m/n) ln 2``."""
    if capacity <= 0:
        return 1
    return max(1, round(bit_count / capacity * math.log(2)))


def single_hash_bit_count(capacity: int, fp_rate: float) -> int:
    """Bits for a *single-hash* filter at ``fp_rate``.

    With one hash, the probability a probe hits a set bit after ``n``
    insertions is ``1 - (1 - 1/m)^n ≈ 1 - e^(-n/m)``; solving for ``m``
    gives ``m = -n / ln(1 - p)``.
    """
    if capacity <= 0:
        raise SketchError(f"capacity must be positive: {capacity}")
    if not 0.0 < fp_rate < 1.0:
        raise SketchError(f"fp_rate must be in (0, 1): {fp_rate}")
    return max(8, math.ceil(-capacity / math.log(1.0 - fp_rate)))


class BloomFilter:
    """Classic Bloom filter with ``hash_count`` hashes over ``bit_count`` bits."""

    def __init__(self, bit_count: int, hash_count: int) -> None:
        if bit_count <= 0:
            raise SketchError(f"bit_count must be positive: {bit_count}")
        if hash_count <= 0:
            raise SketchError(f"hash_count must be positive: {hash_count}")
        self.bit_count = bit_count
        self.hash_count = hash_count
        self._bits = bytearray((bit_count + 7) // 8)
        self.item_count = 0

    @classmethod
    def with_capacity(cls, capacity: int, fp_rate: float = 0.01) -> "BloomFilter":
        """Build a filter sized for ``capacity`` items at ``fp_rate``."""
        bits = optimal_bit_count(capacity, fp_rate)
        return cls(bits, optimal_hash_count(bits, capacity))

    def _positions(self, item: "bytes | str") -> list[int]:
        return double_hashes(item, self.hash_count, self.bit_count)

    def add(self, item: "bytes | str") -> None:
        """Insert an item."""
        for position in self._positions(item):
            self._bits[position // 8] |= 1 << (position % 8)
        self.item_count += 1

    def __contains__(self, item: "bytes | str") -> bool:
        return all(
            self._bits[p // 8] & (1 << (p % 8)) for p in self._positions(item)
        )

    def false_positive_rate(self) -> float:
        """Expected FP rate given the observed number of insertions."""
        if self.item_count == 0:
            return 0.0
        exponent = -self.hash_count * self.item_count / self.bit_count
        return (1.0 - math.exp(exponent)) ** self.hash_count

    def set_bit_count(self) -> int:
        """Number of set bits (popcount of the bitmap)."""
        return int.from_bytes(self._bits, "little").bit_count()

    def serialized_size(self) -> int:
        """Bytes occupied by the raw bitmap."""
        return len(self._bits)


class CountingBloomFilter:
    """Bloom filter with integer counters, supporting deletions.

    Counters are kept in a sparse dict (position -> count), matching the
    paper's "hash table of counters for each non-zero bit" (§5.1).
    """

    def __init__(self, bit_count: int, hash_count: int = 1) -> None:
        if bit_count <= 0:
            raise SketchError(f"bit_count must be positive: {bit_count}")
        if hash_count <= 0:
            raise SketchError(f"hash_count must be positive: {hash_count}")
        self.bit_count = bit_count
        self.hash_count = hash_count
        self.counters: dict[int, int] = {}
        self.item_count = 0

    def _positions(self, item: "bytes | str") -> list[int]:
        if self.hash_count == 1:
            return [hash_to_range(item, self.bit_count)]
        return double_hashes(item, self.hash_count, self.bit_count)

    def add(self, item: "bytes | str") -> list[int]:
        """Insert an item; returns the touched positions."""
        positions = self._positions(item)
        for position in positions:
            self.counters[position] = self.counters.get(position, 0) + 1
        self.item_count += 1
        return positions

    def remove(self, item: "bytes | str") -> list[int]:
        """Delete an item; raises if any counter would go negative."""
        positions = self._positions(item)
        for position in positions:
            if self.counters.get(position, 0) <= 0:
                raise CounterUnderflowError(
                    f"cannot remove item: counter at position {position} is 0"
                )
        for position in positions:
            remaining = self.counters[position] - 1
            if remaining:
                self.counters[position] = remaining
            else:
                del self.counters[position]
        self.item_count -= 1
        return positions

    def __contains__(self, item: "bytes | str") -> bool:
        return all(self.counters.get(p, 0) > 0 for p in self._positions(item))

    def count(self, item: "bytes | str") -> int:
        """Upper bound on the multiplicity of ``item`` (min of its counters)."""
        return min(self.counters.get(p, 0) for p in self._positions(item))


class SingleHashBloomFilter(CountingBloomFilter):
    """Single-hash counting filter — the core of a BFHM bucket.

    ``position(item)`` exposes the single bit position an item maps to; the
    BFHM build job records it so the reverse-mapping rows
    (``bucketNo|bitPos``) can be written (§5.1, Alg. 5 line 12).
    """

    def __init__(self, bit_count: int) -> None:
        super().__init__(bit_count, hash_count=1)

    def position(self, item: "bytes | str") -> int:
        """The (single) bit position ``item`` maps to."""
        return hash_to_range(item, self.bit_count)

    def probe_probability(self) -> float:
        """``PT = 1 - (1 - 1/m)^n ≈ 1 - e^(-n/m)`` — the probability that a
        given bit is set, used for the α compensation factor (§5.3)."""
        if self.item_count == 0:
            return 0.0
        return 1.0 - math.exp(-self.item_count / self.bit_count)
