"""Bit-level writer/reader used by the Golomb coder.

The BFHM stores its per-bucket filter as a Golomb-compressed "blob"
(§5.1); the blob's byte size is what the bandwidth and storage accounting
sees, so the bit stream must be a real, byte-backed encoding rather than a
Python object pretending to be one.

The wire format is frozen (see ``tests/unit/golden_golomb.json``), but the
implementation operates on machine words instead of single bits: writes
accumulate into one Python big int via bulk shifts and flush byte-aligned
chunks with ``int.to_bytes``; reads keep a sliding big-int window refilled
with ``int.from_bytes`` and decode unary runs in one step by inverting the
window and taking ``bit_length`` — no per-bit Python loop anywhere.
"""

from __future__ import annotations

from repro.errors import BitstreamError

#: size of the big-int accumulator/window, in bits.  Bounded chunks keep
#: every shift/mask O(chunk) instead of O(stream); a multiple of 8 so
#: flushed chunks stay byte-aligned.
CHUNK_BITS = 256
_CHUNK_BYTES = CHUNK_BITS // 8


class BitWriter:
    """Accumulates bits most-significant-first into a byte buffer."""

    __slots__ = ("_buffer", "_current", "_filled", "_bit_count")

    def __init__(self) -> None:
        self._buffer = bytearray()  # flushed byte-aligned prefix
        self._current = 0  # pending bits (MSB-first), ``_filled`` wide
        self._filled = 0
        self._bit_count = 0

    @property
    def bit_count(self) -> int:
        """Number of bits written so far."""
        return self._bit_count

    def _flush_chunks(self) -> None:
        while self._filled >= CHUNK_BITS:
            excess = self._filled - CHUNK_BITS
            self._buffer += (self._current >> excess).to_bytes(
                _CHUNK_BYTES, "big"
            )
            self._current &= (1 << excess) - 1
            self._filled = excess

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        self._current = (self._current << 1) | (bit & 1)
        self._filled += 1
        self._bit_count += 1
        if self._filled >= CHUNK_BITS:
            self._flush_chunks()

    def write_bits(self, value: int, width: int) -> None:
        """Append ``width`` bits of ``value``, most significant first."""
        if width < 0:
            raise BitstreamError(f"negative bit width: {width}")
        self._current = (self._current << width) | (value & ((1 << width) - 1))
        self._filled += width
        self._bit_count += width
        if self._filled >= CHUNK_BITS:
            self._flush_chunks()

    def write_unary(self, value: int) -> None:
        """Append ``value`` one-bits followed by a terminating zero."""
        if value < 0:
            raise BitstreamError(f"cannot unary-encode negative {value}")
        # the whole run is one shifted all-ones mask: 1…10
        self._current = (self._current << (value + 1)) | (
            ((1 << value) - 1) << 1
        )
        self._filled += value + 1
        self._bit_count += value + 1
        if self._filled >= CHUNK_BITS:
            self._flush_chunks()

    def getvalue(self) -> bytes:
        """Return the written bits padded with zeros to a byte boundary."""
        result = bytearray(self._buffer)
        if self._filled:
            tail_bytes = (self._filled + 7) // 8
            result += (self._current << (tail_bytes * 8 - self._filled)).to_bytes(
                tail_bytes, "big"
            )
        return bytes(result)


class BitReader:
    """Reads bits most-significant-first from a byte buffer."""

    __slots__ = ("_data", "_limit", "_position", "_window", "_window_bits",
                 "_byte_pos")

    def __init__(self, data: bytes, bit_count: "int | None" = None) -> None:
        self._data = data
        self._limit = len(data) * 8 if bit_count is None else bit_count
        if self._limit > len(data) * 8:
            raise BitstreamError(
                f"bit_count {self._limit} exceeds buffer of {len(data)} bytes"
            )
        self._position = 0
        # invariant: _window holds the next _window_bits unconsumed bits of
        # the stream (MSB-first); _window_bits == _byte_pos * 8 - _position
        self._window = 0
        self._window_bits = 0
        self._byte_pos = 0

    @property
    def remaining(self) -> int:
        """Bits left to read."""
        return self._limit - self._position

    def _refill(self, need: int) -> None:
        data = self._data
        while self._window_bits < need and self._byte_pos < len(data):
            chunk = data[self._byte_pos : self._byte_pos + _CHUNK_BYTES]
            self._byte_pos += len(chunk)
            loaded = len(chunk) * 8
            self._window = (self._window << loaded) | int.from_bytes(chunk, "big")
            self._window_bits += loaded

    def read_bit(self) -> int:
        """Read a single bit; raises :class:`BitstreamError` past the end."""
        return self.read_bits(1)

    def read_bits(self, width: int) -> int:
        """Read ``width`` bits as an unsigned integer."""
        if width <= 0:
            return 0
        if width > self._limit - self._position:
            raise BitstreamError("read past end of bit stream")
        if self._window_bits < width:
            self._refill(width)
        shift = self._window_bits - width
        value = self._window >> shift
        self._window &= (1 << shift) - 1
        self._window_bits = shift
        self._position += width
        return value

    def read_unary(self) -> int:
        """Read a unary-coded value (count of ones before the first zero)."""
        count = 0
        while True:
            avail = self._window_bits
            valid = self._limit - self._position
            if valid <= 0:
                raise BitstreamError("read past end of bit stream")
            if avail == 0:
                self._refill(1)
                continue
            if avail > valid:
                avail = valid
            # leading ones of the top ``avail`` bits: invert and bit_length
            tail = self._window_bits - avail
            inverted = (self._window >> tail) ^ ((1 << avail) - 1)
            if inverted == 0:
                # the whole valid window is ones — consume it and refill
                count += avail
                self._position += avail
                self._window_bits = tail
                self._window &= (1 << tail) - 1
                continue
            ones = avail - inverted.bit_length()
            shift = self._window_bits - (ones + 1)
            self._window &= (1 << shift) - 1
            self._window_bits = shift
            self._position += ones + 1
            return count + ones
