"""Bit-level writer/reader used by the Golomb coder.

The BFHM stores its per-bucket filter as a Golomb-compressed "blob"
(§5.1); the blob's byte size is what the bandwidth and storage accounting
sees, so the bit stream must be a real, byte-backed encoding rather than a
Python object pretending to be one.
"""

from __future__ import annotations

from repro.errors import BitstreamError


class BitWriter:
    """Accumulates bits most-significant-first into a byte buffer."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._current = 0
        self._filled = 0
        self._bit_count = 0

    @property
    def bit_count(self) -> int:
        """Number of bits written so far."""
        return self._bit_count

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        self._current = (self._current << 1) | (bit & 1)
        self._filled += 1
        self._bit_count += 1
        if self._filled == 8:
            self._buffer.append(self._current)
            self._current = 0
            self._filled = 0

    def write_bits(self, value: int, width: int) -> None:
        """Append ``width`` bits of ``value``, most significant first."""
        if width < 0:
            raise BitstreamError(f"negative bit width: {width}")
        for shift in range(width - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def write_unary(self, value: int) -> None:
        """Append ``value`` one-bits followed by a terminating zero."""
        if value < 0:
            raise BitstreamError(f"cannot unary-encode negative {value}")
        for _ in range(value):
            self.write_bit(1)
        self.write_bit(0)

    def getvalue(self) -> bytes:
        """Return the written bits padded with zeros to a byte boundary."""
        result = bytearray(self._buffer)
        if self._filled:
            result.append(self._current << (8 - self._filled))
        return bytes(result)


class BitReader:
    """Reads bits most-significant-first from a byte buffer."""

    def __init__(self, data: bytes, bit_count: "int | None" = None) -> None:
        self._data = data
        self._limit = len(data) * 8 if bit_count is None else bit_count
        if self._limit > len(data) * 8:
            raise BitstreamError(
                f"bit_count {self._limit} exceeds buffer of {len(data)} bytes"
            )
        self._position = 0

    @property
    def remaining(self) -> int:
        """Bits left to read."""
        return self._limit - self._position

    def read_bit(self) -> int:
        """Read a single bit; raises :class:`BitstreamError` past the end."""
        if self._position >= self._limit:
            raise BitstreamError("read past end of bit stream")
        byte = self._data[self._position // 8]
        bit = (byte >> (7 - self._position % 8)) & 1
        self._position += 1
        return bit

    def read_bits(self, width: int) -> int:
        """Read ``width`` bits as an unsigned integer."""
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value

    def read_unary(self) -> int:
        """Read a unary-coded value (count of ones before the first zero)."""
        count = 0
        while self.read_bit():
            count += 1
        return count
