"""Dynamic Bloom filters — the paper's §8 future-work extension.

"Immediate future plans include the adoption of dynamic Bloom filters to
further improve the time and bandwidth performance of BFHM Rank Join."

A :class:`DynamicBloomFilter` (Guo et al.-style) is a chain of fixed-size
single-hash slices.  Inserts go to the newest slice; when it reaches its
design capacity a fresh slice is opened.  Two benefits for BFHM buckets:

* **bounded per-slice load** — a static single-hash filter sized for the
  design capacity degrades steadily as a bucket overpopulates (its probe
  probability, hence the α correction's variance, grows with every
  insert), while every dynamic slice stays at its design point;
* **incremental time/bandwidth** (the §8 performance motivation) — an
  online insert touches only the *active* slice, so §6 write-backs
  re-encode and ship one small slice blob instead of the whole bucket
  blob, and replicas/coordinators can cache frozen slices.

All slices share one bit width, so bit positions remain comparable across
slices and across filters — the property BFHM's bitwise-AND bucket join
and reverse-mapping keys rely on.
"""

from __future__ import annotations

import math

from repro.errors import CounterUnderflowError, SketchError
from repro.sketches.hybrid import HybridBlob, HybridBloomFilter


class DynamicBloomFilter:
    """A growable chain of single-hash counting slices."""

    def __init__(self, slice_bits: int, slice_capacity: int) -> None:
        if slice_bits <= 0:
            raise SketchError(f"slice_bits must be positive: {slice_bits}")
        if slice_capacity <= 0:
            raise SketchError(
                f"slice_capacity must be positive: {slice_capacity}"
            )
        self.slice_bits = slice_bits
        self.slice_capacity = slice_capacity
        self.slices: list[HybridBloomFilter] = [HybridBloomFilter(slice_bits)]

    @classmethod
    def for_fp_rate(cls, slice_capacity: int, fp_rate: float) -> "DynamicBloomFilter":
        """Slices sized so each stays at ``fp_rate`` when full."""
        from repro.sketches.bloom import single_hash_bit_count

        return cls(single_hash_bit_count(slice_capacity, fp_rate), slice_capacity)

    # -- mutation --------------------------------------------------------------

    @property
    def item_count(self) -> int:
        return sum(s.item_count for s in self.slices)

    def insert(self, item: "bytes | str") -> int:
        """Insert into the active slice; returns the bit position (shared
        across slices, so reverse mappings stay valid)."""
        active = self.slices[-1]
        if active.item_count >= self.slice_capacity:
            active = HybridBloomFilter(self.slice_bits)
            self.slices.append(active)
        return active.insert(item)

    def remove(self, item: "bytes | str") -> None:
        """Remove one occurrence (newest slice holding it wins)."""
        for candidate in reversed(self.slices):
            if item in candidate:
                candidate.remove(item)
                return
        raise CounterUnderflowError(f"item not present: {item!r}")

    def __contains__(self, item: "bytes | str") -> bool:
        return any(item in s for s in self.slices)

    def count(self, item: "bytes | str") -> int:
        """Upper bound on multiplicity, summed over slices."""
        return sum(s.count(item) for s in self.slices if item in s)

    def position(self, item: "bytes | str") -> int:
        return self.slices[0].position(item)

    # -- statistics -------------------------------------------------------------

    def effective_fp_rate(self) -> float:
        """1 - Π(1 - PT_slice): a probe is false-positive if any slice
        falsely matches.  Bounded because each slice caps its load."""
        survive = 1.0
        for s in self.slices:
            survive *= 1.0 - s.probe_probability()
        return 1.0 - survive

    def merged_counters(self) -> dict[int, int]:
        """Per-position counters aggregated over slices (for bucket joins)."""
        merged: dict[int, int] = {}
        for s in self.slices:
            for position, count in s.counters.items():
                merged[position] = merged.get(position, 0) + count
        return merged

    def intersect_positions(self, other: "DynamicBloomFilter | HybridBloomFilter") -> list[int]:
        """Common set-bit positions with another (dynamic or static) filter
        of the same bit width."""
        other_bits = (
            other.slice_bits if isinstance(other, DynamicBloomFilter)
            else other.bit_count
        )
        if other_bits != self.slice_bits:
            raise SketchError(
                "cannot intersect filters of different widths: "
                f"{self.slice_bits} vs {other_bits}"
            )
        mine = self.merged_counters()
        theirs = (
            other.merged_counters() if isinstance(other, DynamicBloomFilter)
            else other.counters
        )
        return sorted(p for p in mine if p in theirs)

    def join_cardinality(self, other: "DynamicBloomFilter") -> float:
        """α-compensated join-size estimate (the Alg. 7 arithmetic with the
        chain's effective FP rates)."""
        common = self.intersect_positions(other)
        if not common:
            return 0.0
        mine = self.merged_counters()
        theirs = other.merged_counters()
        raw = sum(mine[p] * theirs[p] for p in common)
        alpha = (1.0 - self.effective_fp_rate()) * (
            1.0 - other.effective_fp_rate()
        )
        return raw * alpha

    # -- serialization -------------------------------------------------------------

    def to_blobs(self) -> list[HybridBlob]:
        """One Golomb blob per slice (shipped/stored like BFHM blobs)."""
        return [s.to_blob() for s in self.slices]

    @classmethod
    def from_blobs(
        cls, blobs: "list[HybridBlob]", slice_capacity: int
    ) -> "DynamicBloomFilter":
        if not blobs:
            raise SketchError("at least one slice blob required")
        instance = cls(blobs[0].bit_count, slice_capacity)
        instance.slices = [HybridBloomFilter.from_blob(blob) for blob in blobs]
        return instance

    def serialized_size(self) -> int:
        return sum(blob.serialized_size() for blob in self.to_blobs())


def static_overload_fp_rate(design_capacity: int, actual_items: int, fp_rate: float) -> float:
    """What a *static* single-hash filter's probe probability degrades to
    when a bucket designed for ``design_capacity`` holds ``actual_items``
    (the §8 motivation for going dynamic)."""
    from repro.sketches.bloom import single_hash_bit_count

    bits = single_hash_bit_count(design_capacity, fp_rate)
    return 1.0 - math.exp(-actual_items / bits)
