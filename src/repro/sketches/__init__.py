"""Probabilistic sketches and statistical structures.

This subpackage provides the statistical substrate of the BFHM index (§5 of
the paper) and of the DRJN baseline:

* deterministic hash functions (:mod:`repro.sketches.hashing`);
* bit-level I/O and Golomb/Rice coding (:mod:`repro.sketches.bitio`,
  :mod:`repro.sketches.golomb`);
* classic, counting, and single-hash Bloom filters
  (:mod:`repro.sketches.bloom`);
* the hybrid Golomb-compressed single-hash counting filter used per BFHM
  bucket (:mod:`repro.sketches.hybrid`);
* equi-width histograms (1-D for BFHM, 2-D for DRJN)
  (:mod:`repro.sketches.histogram`, :mod:`repro.sketches.histogram2d`).
"""

from repro.sketches.bloom import BloomFilter, CountingBloomFilter, SingleHashBloomFilter
from repro.sketches.dynamic import DynamicBloomFilter
from repro.sketches.golomb import golomb_decode, golomb_encode, optimal_golomb_parameter
from repro.sketches.hashing import fnv1a_64, hash_to_range, mix64
from repro.sketches.histogram import EquiWidthHistogram, bucket_bounds, score_to_bucket
from repro.sketches.histogram2d import DRJNHistogram
from repro.sketches.hybrid import HybridBloomFilter

__all__ = [
    "BloomFilter",
    "CountingBloomFilter",
    "SingleHashBloomFilter",
    "DynamicBloomFilter",
    "golomb_decode",
    "golomb_encode",
    "optimal_golomb_parameter",
    "fnv1a_64",
    "hash_to_range",
    "mix64",
    "EquiWidthHistogram",
    "bucket_bounds",
    "score_to_bucket",
    "DRJNHistogram",
    "HybridBloomFilter",
]
