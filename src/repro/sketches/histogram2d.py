"""The DRJN 2-D histogram (Doulkeridis et al., ICDE 2012; paper §2, §7.1).

"The DRJN index is roughly a 2-d matrix, with join value partitions on its
x-axis and score value partitions on its y-axis."  Each cell counts the
tuples of a relation whose join value falls in join-partition ``j`` and whose
score falls in score-bucket ``s``.  Per-partition distinct-join-value counts
support the uniform-frequency join-cardinality estimate used during DRJN's
bound-estimation rounds.

Join values are partitioned by deterministic hash, which is how a DHT-style
system (the original DRJN setting) would spread them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SketchError
from repro.sketches.hashing import hash_to_range
from repro.sketches.histogram import bucket_bounds, score_to_bucket


@dataclass
class DRJNCell:
    """One (join-partition, score-bucket) cell."""

    count: int = 0
    min_score: float = float("inf")
    max_score: float = float("-inf")

    def observe(self, score: float) -> None:
        self.count += 1
        if score < self.min_score:
            self.min_score = score
        if score > self.max_score:
            self.max_score = score


@dataclass
class DRJNScoreRow:
    """All cells of one score bucket — stored as one NoSQL row so a single
    ``Get`` retrieves a full batch of buckets (the paper's §7.1 adaptation)."""

    score_bucket: int
    cells: dict[int, DRJNCell] = field(default_factory=dict)

    def serialized_size(self) -> int:
        # per cell: partition id (4) + count (4) + min/max scores (16)
        return 8 + 24 * len(self.cells)


class DRJNHistogram:
    """2-D (join-partition × score-bucket) histogram for one relation."""

    def __init__(self, num_join_partitions: int, num_score_buckets: int) -> None:
        if num_join_partitions <= 0:
            raise SketchError(
                f"num_join_partitions must be positive: {num_join_partitions}"
            )
        if num_score_buckets <= 0:
            raise SketchError(
                f"num_score_buckets must be positive: {num_score_buckets}"
            )
        self.num_join_partitions = num_join_partitions
        self.num_score_buckets = num_score_buckets
        self._rows: dict[int, DRJNScoreRow] = {}
        self._distinct_values: dict[int, set[str]] = {}

    def join_partition(self, join_value: str) -> int:
        """Deterministic hash partition of a join value."""
        return hash_to_range(join_value, self.num_join_partitions)

    def add(self, join_value: str, score: float) -> tuple[int, int]:
        """Record a tuple; returns its ``(join_partition, score_bucket)``."""
        partition = self.join_partition(join_value)
        bucket = score_to_bucket(score, self.num_score_buckets)
        row = self._rows.setdefault(bucket, DRJNScoreRow(bucket))
        row.cells.setdefault(partition, DRJNCell()).observe(score)
        self._distinct_values.setdefault(partition, set()).add(join_value)
        return partition, bucket

    def score_row(self, bucket: int) -> "DRJNScoreRow | None":
        """The stored row for ``bucket``, or ``None`` if empty."""
        return self._rows.get(bucket)

    def non_empty_buckets(self) -> list[int]:
        return sorted(self._rows)

    def distinct_count(self, partition: int) -> int:
        """Number of distinct join values seen in ``partition``."""
        return len(self._distinct_values.get(partition, ()))

    def bounds(self, bucket: int) -> tuple[float, float]:
        return bucket_bounds(bucket, self.num_score_buckets)

    def estimate_join(self, other: "DRJNHistogram", my_bucket: int, other_bucket: int) -> float:
        """Uniform-frequency estimate of the join size between one of our
        score buckets and one of ``other``'s.

        For each shared join partition ``p`` with ``c1`` and ``c2`` tuples and
        ``v = max(distinct(p))`` distinct join values, the expected number of
        joining pairs is ``c1 * c2 / v``.
        """
        mine = self._rows.get(my_bucket)
        theirs = other._rows.get(other_bucket)
        if mine is None or theirs is None:
            return 0.0
        total = 0.0
        for partition, cell in mine.cells.items():
            other_cell = theirs.cells.get(partition)
            if other_cell is None:
                continue
            distinct = max(
                self.distinct_count(partition), other.distinct_count(partition), 1
            )
            total += cell.count * other_cell.count / distinct
        return total

    def serialized_size(self) -> int:
        """Total index bytes (rows only; distinct counts ride in metadata)."""
        return sum(row.serialized_size() for row in self._rows.values()) + 4 * len(
            self._distinct_values
        )
