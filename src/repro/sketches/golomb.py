"""Golomb coding of non-negative integers (Golomb, 1966).

The BFHM bucket blob (§5.1) stores the set-bit positions of a very sparse
single-hash Bloom filter and the associated counters.  Raw single-hash
filters would be enormous ("single hash function Bloom filters can grow very
large in space and are thus impractical otherwise"), so the paper compresses
both with Golomb coding — the optimal prefix code for geometrically
distributed gaps, which is exactly the distribution of gaps between set bits
of a sparse random bitmap.

``golomb_encode`` writes each value as ``q`` in unary and ``r`` in truncated
binary, with ``q, r = divmod(value, parameter)``.
"""

from __future__ import annotations

import math

from repro.errors import BitstreamError
from repro.sketches.bitio import BitReader, BitWriter


def optimal_golomb_parameter(probability: float) -> int:
    """Optimal Golomb parameter ``M`` for gap probability ``p``.

    For a bitmap where each bit is set independently with probability ``p``,
    gaps are geometric and the optimal parameter is
    ``M = ceil(-1 / log2(1 - p))`` (Gallager & Van Voorhis).  Degenerate
    probabilities fall back to ``M = 1``.
    """
    if probability <= 0.0 or probability >= 1.0:
        return 1
    denominator = -math.log2(1.0 - probability)
    if denominator <= 0.0:
        return 1
    return max(1, math.ceil(1.0 / denominator))


def _write_golomb(writer: BitWriter, value: int, parameter: int) -> None:
    quotient, remainder = divmod(value, parameter)
    writer.write_unary(quotient)
    if parameter == 1:
        return
    # truncated binary encoding of the remainder
    width = parameter.bit_length()
    cutoff = (1 << width) - parameter
    if remainder < cutoff:
        writer.write_bits(remainder, width - 1)
    else:
        writer.write_bits(remainder + cutoff, width)


def _read_golomb(reader: BitReader, parameter: int) -> int:
    quotient = reader.read_unary()
    if parameter == 1:
        return quotient
    width = parameter.bit_length()
    cutoff = (1 << width) - parameter
    remainder = reader.read_bits(width - 1)
    if remainder >= cutoff:
        remainder = (remainder << 1) | reader.read_bit()
        remainder -= cutoff
    return quotient * parameter + remainder


def golomb_encode(values: "list[int]", parameter: int) -> tuple[bytes, int]:
    """Encode non-negative integers; returns ``(payload, bit_count)``.

    ``bit_count`` is needed to decode exactly (the payload is padded to a
    byte boundary).
    """
    if parameter <= 0:
        raise BitstreamError(f"Golomb parameter must be positive: {parameter}")
    writer = BitWriter()
    for value in values:
        if value < 0:
            raise BitstreamError(f"cannot Golomb-encode negative value {value}")
        _write_golomb(writer, value, parameter)
    return writer.getvalue(), writer.bit_count


def golomb_decode(payload: bytes, bit_count: int, count: int, parameter: int) -> list[int]:
    """Decode ``count`` integers from a :func:`golomb_encode` payload."""
    if parameter <= 0:
        raise BitstreamError(f"Golomb parameter must be positive: {parameter}")
    reader = BitReader(payload, bit_count)
    return [_read_golomb(reader, parameter) for _ in range(count)]


def encode_sorted_set(positions: "list[int]", universe: int) -> tuple[bytes, int, int]:
    """Golomb-compress a sorted set of bit positions (a GCS).

    Encodes first-order gaps with the parameter tuned to the set's density.
    Returns ``(payload, bit_count, parameter)``.
    """
    if any(b < a for a, b in zip(positions, positions[1:])):
        raise BitstreamError("positions must be sorted for gap encoding")
    density = len(positions) / universe if universe > 0 else 0.0
    parameter = optimal_golomb_parameter(density)
    gaps = []
    previous = -1
    for position in positions:
        gaps.append(position - previous - 1)
        previous = position
    payload, bit_count = golomb_encode(gaps, parameter)
    return payload, bit_count, parameter


def decode_sorted_set(payload: bytes, bit_count: int, count: int, parameter: int) -> list[int]:
    """Inverse of :func:`encode_sorted_set`."""
    gaps = golomb_decode(payload, bit_count, count, parameter)
    positions = []
    previous = -1
    for gap in gaps:
        previous = previous + gap + 1
        positions.append(previous)
    return positions
