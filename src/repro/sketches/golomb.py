"""Golomb coding of non-negative integers (Golomb, 1966).

The BFHM bucket blob (§5.1) stores the set-bit positions of a very sparse
single-hash Bloom filter and the associated counters.  Raw single-hash
filters would be enormous ("single hash function Bloom filters can grow very
large in space and are thus impractical otherwise"), so the paper compresses
both with Golomb coding — the optimal prefix code for geometrically
distributed gaps, which is exactly the distribution of gaps between set bits
of a sparse random bitmap.

``golomb_encode`` writes each value as ``q`` in unary and ``r`` in truncated
binary, with ``q, r = divmod(value, parameter)``.
"""

from __future__ import annotations

import math

from repro.errors import BitstreamError
from repro.sketches.bitio import CHUNK_BITS, BitReader, BitWriter

_CHUNK_BYTES = CHUNK_BITS // 8


def optimal_golomb_parameter(probability: float) -> int:
    """Optimal Golomb parameter ``M`` for gap probability ``p``.

    For a bitmap where each bit is set independently with probability ``p``,
    gaps are geometric and the optimal parameter is
    ``M = ceil(-1 / log2(1 - p))`` (Gallager & Van Voorhis).  Degenerate
    probabilities fall back to ``M = 1``.
    """
    if probability <= 0.0 or probability >= 1.0:
        return 1
    denominator = -math.log2(1.0 - probability)
    if denominator <= 0.0:
        return 1
    return max(1, math.ceil(1.0 / denominator))


def write_golomb(writer: BitWriter, value: int, parameter: int) -> None:
    """Write one Golomb-coded value through a :class:`BitWriter`.

    The per-value reference shape of the format (``q`` in unary, the
    remainder in truncated binary), fused into one bulk write.  The bulk
    coders below inline this; it stays for any other bit-level producer.
    """
    quotient, remainder = divmod(value, parameter)
    if parameter == 1:
        writer.write_unary(quotient)
        return
    width = parameter.bit_length()
    cutoff = (1 << width) - parameter
    if remainder < cutoff:
        tail_width = width - 1
    else:
        remainder += cutoff
        tail_width = width
    unary = ((1 << quotient) - 1) << 1
    writer.write_bits((unary << tail_width) | remainder, quotient + 1 + tail_width)


def read_golomb(reader: BitReader, parameter: int) -> int:
    """Read one Golomb-coded value through a :class:`BitReader`
    (the inverse of :func:`write_golomb`)."""
    quotient = reader.read_unary()
    if parameter == 1:
        return quotient
    width = parameter.bit_length()
    cutoff = (1 << width) - parameter
    remainder = reader.read_bits(width - 1)
    if remainder >= cutoff:
        remainder = (remainder << 1) | reader.read_bit()
        remainder -= cutoff
    return quotient * parameter + remainder


def golomb_encode(values: "list[int]", parameter: int) -> tuple[bytes, int]:
    """Encode non-negative integers; returns ``(payload, bit_count)``.

    ``bit_count`` is needed to decode exactly (the payload is padded to a
    byte boundary).  The hot loop keeps the accumulator in local variables
    (one fused bulk shift per value) rather than going through
    :class:`BitWriter` method calls; the emitted stream is identical.
    """
    if parameter <= 0:
        raise BitstreamError(f"Golomb parameter must be positive: {parameter}")
    if parameter == 1:
        # pure unary: build the whole stream as a string in C ("1"-runs
        # joined and terminated by "0"s) and convert once.  One validating
        # pass keeps lazy iterables safe (no second consumption).
        runs = []
        for value in values:
            if value < 0:
                raise BitstreamError(
                    f"cannot Golomb-encode negative value {value}"
                )
            runs.append("1" * value)
        if not runs:
            return b"", 0
        stream = "0".join(runs) + "0"
        total_bits = len(stream)
        tail_bytes = (total_bits + 7) // 8
        payload = (int(stream, 2) << (tail_bytes * 8 - total_bits)).to_bytes(
            tail_bytes, "big"
        )
        return payload, total_bits
    width = parameter.bit_length()
    cutoff = (1 << width) - parameter
    buffer = bytearray()
    current = 0
    filled = 0
    total_bits = 0
    for value in values:
        if value < 0:
            raise BitstreamError(f"cannot Golomb-encode negative value {value}")
        quotient, remainder = divmod(value, parameter)
        unary = ((1 << quotient) - 1) << 1  # q ones then the terminating 0
        if remainder < cutoff:
            tail_width = width - 1
        else:
            remainder += cutoff
            tail_width = width
        current = (current << (quotient + 1 + tail_width)) | (
            (unary << tail_width) | remainder
        )
        filled += quotient + 1 + tail_width
        total_bits += quotient + 1 + tail_width
        while filled >= CHUNK_BITS:
            excess = filled - CHUNK_BITS
            buffer += (current >> excess).to_bytes(_CHUNK_BYTES, "big")
            current &= (1 << excess) - 1
            filled = excess
    if filled:
        tail_bytes = (filled + 7) // 8
        buffer += (current << (tail_bytes * 8 - filled)).to_bytes(tail_bytes, "big")
    return bytes(buffer), total_bits


def golomb_decode(payload: bytes, bit_count: int, count: int, parameter: int) -> list[int]:
    """Decode ``count`` integers from a :func:`golomb_encode` payload.

    The stream is expanded once into a bit *string* (one linear
    ``int.from_bytes`` + ``format``), after which every value decodes with
    C-speed primitives: ``str.find`` locates the unary terminator in one
    call and ``int(slice, 2)`` parses the truncated-binary remainder — no
    per-bit work and no per-value big-int arithmetic.
    """
    if parameter <= 0:
        raise BitstreamError(f"Golomb parameter must be positive: {parameter}")
    if bit_count > len(payload) * 8:
        raise BitstreamError(
            f"bit_count {bit_count} exceeds buffer of {len(payload)} bytes"
        )
    if count <= 0:
        return []
    total = len(payload) * 8
    stream = format(int.from_bytes(payload, "big"), f"0{total}b") if payload else ""
    if parameter == 1:
        # pure unary: one C-level split recovers every run of ones at once
        runs = stream.split("0", count)
        if len(runs) <= count:
            raise BitstreamError("read past end of bit stream")
        values = list(map(len, runs[:count]))
        if sum(values) + count > bit_count:
            raise BitstreamError("read past end of bit stream")
        return values
    find = stream.find
    position = 0
    out: list[int] = []
    append = out.append
    width = parameter.bit_length()
    cutoff = (1 << width) - parameter
    tail_width = width - 1
    for _ in range(count):
        zero = find("0", position)
        if zero < 0 or zero >= bit_count:
            raise BitstreamError("read past end of bit stream")
        quotient = zero - position
        position = zero + 1
        end = position + tail_width
        if end > bit_count:
            raise BitstreamError("read past end of bit stream")
        remainder = int(stream[position:end], 2) if tail_width else 0
        position = end
        if remainder >= cutoff:
            if position >= bit_count:
                raise BitstreamError("read past end of bit stream")
            remainder = ((remainder << 1) | (stream[position] == "1")) - cutoff
            position += 1
        append(quotient * parameter + remainder)
    return out


def encode_sorted_set(positions: "list[int]", universe: int) -> tuple[bytes, int, int]:
    """Golomb-compress a sorted set of bit positions (a GCS).

    Encodes first-order gaps with the parameter tuned to the set's density,
    computing each gap inline in the encode loop (one pass over the set, no
    intermediate gaps list).  Returns ``(payload, bit_count, parameter)``.
    """
    if any(b < a for a, b in zip(positions, positions[1:])):
        raise BitstreamError("positions must be sorted for gap encoding")
    density = len(positions) / universe if universe > 0 else 0.0
    parameter = optimal_golomb_parameter(density)
    width = parameter.bit_length()
    cutoff = (1 << width) - parameter
    buffer = bytearray()
    current = 0
    filled = 0
    total_bits = 0
    previous = -1
    for position in positions:
        gap = position - previous - 1
        if gap < 0:  # duplicate positions (the sorted check passes them)
            raise BitstreamError(f"cannot Golomb-encode negative value {gap}")
        quotient, remainder = divmod(gap, parameter)
        previous = position
        unary = ((1 << quotient) - 1) << 1
        if parameter == 1:
            bits = unary
            piece_width = quotient + 1
        else:
            if remainder < cutoff:
                tail_width = width - 1
            else:
                remainder += cutoff
                tail_width = width
            bits = (unary << tail_width) | remainder
            piece_width = quotient + 1 + tail_width
        current = (current << piece_width) | bits
        filled += piece_width
        total_bits += piece_width
        while filled >= CHUNK_BITS:
            excess = filled - CHUNK_BITS
            buffer += (current >> excess).to_bytes(_CHUNK_BYTES, "big")
            current &= (1 << excess) - 1
            filled = excess
    if filled:
        tail_bytes = (filled + 7) // 8
        buffer += (current << (tail_bytes * 8 - filled)).to_bytes(tail_bytes, "big")
    return bytes(buffer), total_bits, parameter


def decode_sorted_set(payload: bytes, bit_count: int, count: int, parameter: int) -> list[int]:
    """Inverse of :func:`encode_sorted_set`.

    Mirrors :func:`golomb_decode`'s string scan but accumulates the running
    position inline, so the positions come out in one pass with no
    intermediate gaps list.
    """
    if parameter <= 0:
        raise BitstreamError(f"Golomb parameter must be positive: {parameter}")
    if bit_count > len(payload) * 8:
        raise BitstreamError(
            f"bit_count {bit_count} exceeds buffer of {len(payload)} bytes"
        )
    if count <= 0:
        return []
    total = len(payload) * 8
    stream = format(int.from_bytes(payload, "big"), f"0{total}b") if payload else ""
    find = stream.find
    position = 0
    running = -1
    out: list[int] = []
    append = out.append
    if parameter == 1:
        runs = stream.split("0", count)
        if len(runs) <= count:
            raise BitstreamError("read past end of bit stream")
        consumed = 0
        for run in runs[:count]:
            gap = len(run)
            consumed += gap + 1
            running += gap + 1
            append(running)
        if consumed > bit_count:
            raise BitstreamError("read past end of bit stream")
        return out
    width = parameter.bit_length()
    cutoff = (1 << width) - parameter
    tail_width = width - 1
    for _ in range(count):
        zero = find("0", position)
        if zero < 0 or zero >= bit_count:
            raise BitstreamError("read past end of bit stream")
        quotient = zero - position
        position = zero + 1
        end = position + tail_width
        if end > bit_count:
            raise BitstreamError("read past end of bit stream")
        remainder = int(stream[position:end], 2) if tail_width else 0
        position = end
        if remainder >= cutoff:
            if position >= bit_count:
                raise BitstreamError("read past end of bit stream")
            remainder = ((remainder << 1) | (stream[position] == "1")) - cutoff
            position += 1
        running += quotient * parameter + remainder + 1
        append(running)
    return out
