"""Deterministic hash functions.

Python's builtin ``hash`` for strings is salted per process, which would make
index layouts and Bloom filter contents irreproducible across runs.  All
sketches therefore use the explicit functions below: FNV-1a for string
hashing and a splitmix64-style finalizer for deriving independent hash
streams from a single base hash.
"""

from __future__ import annotations

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = 0xFFFFFFFFFFFFFFFF


def fnv1a_64(data: "bytes | str") -> int:
    """64-bit FNV-1a hash of a byte string (strings are UTF-8 encoded)."""
    if isinstance(data, str):
        data = data.encode("utf-8")
    value = _FNV_OFFSET
    for byte in data:
        value ^= byte
        value = (value * _FNV_PRIME) & _MASK64
    return value


def mix64(value: int) -> int:
    """splitmix64 finalizer: a strong 64-bit avalanche mix."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def hash_to_range(item: "bytes | str", modulus: int, seed: int = 0) -> int:
    """Map ``item`` to ``[0, modulus)`` deterministically.

    Independent hash streams (for multi-hash Bloom filters) are obtained by
    varying ``seed``; the mixing step decorrelates them.
    """
    if modulus <= 0:
        raise ValueError(f"modulus must be positive, got {modulus}")
    base = fnv1a_64(item)
    return mix64(base ^ mix64(seed)) % modulus


def double_hashes(item: "bytes | str", count: int, modulus: int) -> list[int]:
    """``count`` hash values in ``[0, modulus)`` via double hashing.

    Kirsch–Mitzenmacher: ``h_i = h1 + i*h2 mod m`` is as good as ``count``
    independent hashes for Bloom filter purposes, at two hash evaluations.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    base = fnv1a_64(item)
    h1 = mix64(base)
    h2 = mix64(base ^ 0xA5A5A5A5A5A5A5A5) | 1  # odd => full period
    return [((h1 + i * h2) & _MASK64) % modulus for i in range(count)]
