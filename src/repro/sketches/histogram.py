"""Equi-width histograms over the score axis (§5.1).

Bucket numbering follows the paper exactly: for scores in [0, 1] and
``numBuckets`` buckets, bucket 0 covers the *highest* score range
``(1 - w, 1]``, bucket 1 covers ``(1 - 2w, 1 - w]``, and so on — so
ascending bucket keys correspond to descending scores, matching HBase's
ascending-only scans.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SketchError


def score_to_bucket(score: float, num_buckets: int, lo: float = 0.0, hi: float = 1.0) -> int:
    """Map a score to its bucket number (0 = highest score range)."""
    if num_buckets <= 0:
        raise SketchError(f"num_buckets must be positive: {num_buckets}")
    if hi <= lo:
        raise SketchError(f"invalid score domain [{lo}, {hi}]")
    if score < lo or score > hi:
        raise SketchError(f"score {score} outside domain [{lo}, {hi}]")
    width = (hi - lo) / num_buckets
    # bucket b covers (hi - (b+1)*w, hi - b*w]; scores equal to a lower
    # boundary belong to the bucket above's exclusive end, i.e. round down
    offset = (hi - score) / width
    bucket = int(offset)
    if bucket == offset and bucket > 0:
        bucket -= 1  # boundary score belongs to the higher-score bucket
    return min(bucket, num_buckets - 1)


def bucket_bounds(bucket: int, num_buckets: int, lo: float = 0.0, hi: float = 1.0) -> tuple[float, float]:
    """``(lower, upper)`` score boundaries of ``bucket`` (lower exclusive)."""
    if not 0 <= bucket < num_buckets:
        raise SketchError(f"bucket {bucket} out of range [0, {num_buckets})")
    width = (hi - lo) / num_buckets
    upper = hi - bucket * width
    lower = upper - width
    return (max(lower, lo), upper)


@dataclass
class BucketStats:
    """Aggregate statistics of one histogram bucket."""

    count: int = 0
    min_score: float = float("inf")
    max_score: float = float("-inf")

    def observe(self, score: float) -> None:
        self.count += 1
        if score < self.min_score:
            self.min_score = score
        if score > self.max_score:
            self.max_score = score

    @property
    def empty(self) -> bool:
        return self.count == 0


class EquiWidthHistogram:
    """Counts plus min/max actual scores per equi-width bucket."""

    def __init__(self, num_buckets: int, lo: float = 0.0, hi: float = 1.0) -> None:
        if num_buckets <= 0:
            raise SketchError(f"num_buckets must be positive: {num_buckets}")
        self.num_buckets = num_buckets
        self.lo = lo
        self.hi = hi
        self._buckets: dict[int, BucketStats] = {}

    def add(self, score: float) -> int:
        """Record a score; returns the bucket it fell into."""
        bucket = score_to_bucket(score, self.num_buckets, self.lo, self.hi)
        self._buckets.setdefault(bucket, BucketStats()).observe(score)
        return bucket

    def bucket(self, bucket: int) -> BucketStats:
        """Stats for ``bucket`` (empty stats if nothing landed there)."""
        return self._buckets.get(bucket, BucketStats())

    def bounds(self, bucket: int) -> tuple[float, float]:
        return bucket_bounds(bucket, self.num_buckets, self.lo, self.hi)

    def non_empty_buckets(self) -> list[int]:
        """Bucket numbers with data, ascending (= descending score)."""
        return sorted(self._buckets)

    @property
    def total_count(self) -> int:
        return sum(stats.count for stats in self._buckets.values())
