"""The hybrid Golomb-compressed single-hash counting Bloom filter (§5.1).

One :class:`HybridBloomFilter` backs one BFHM bucket.  Logically it is a
single-hash-function Bloom filter plus a hash table of counters for each set
bit (Fig. 4); physically, both the sorted set-bit positions and the counters
are Golomb-compressed into a byte "blob", which is what gets stored in the
NoSQL store and shipped over the network.  The paper calls this fusion "a
hybrid between Golomb Compressed Sets and Counting Bloom filters".

The in-memory object keeps the uncompressed dict for fast updates during
index builds; :meth:`to_blob` / :meth:`from_blob` convert to and from the
wire format, and all size accounting uses the blob size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SketchError
from repro.sketches.bloom import SingleHashBloomFilter
from repro.sketches.golomb import (
    decode_sorted_set,
    encode_sorted_set,
    golomb_decode,
    golomb_encode,
    optimal_golomb_parameter,
)


@dataclass(frozen=True, slots=True)
class HybridBlob:
    """Serialized form of a :class:`HybridBloomFilter`.

    The header fields (small ints/floats) model the few bytes of metadata
    HBase stores alongside the compressed payloads.
    """

    bit_count: int
    entry_count: int
    item_count: int
    positions_payload: bytes
    positions_bits: int
    positions_parameter: int
    counters_payload: bytes
    counters_bits: int
    counters_parameter: int

    def serialized_size(self) -> int:
        """Bytes of the blob as stored/shipped: payloads + a 24-byte header."""
        return len(self.positions_payload) + len(self.counters_payload) + 24


class HybridBloomFilter(SingleHashBloomFilter):
    """Single-hash counting filter with Golomb blob (de)serialization."""

    def insert(self, item: "bytes | str") -> int:
        """Insert ``item`` and return its bit position (Alg. 5, line 12)."""
        return self.add(item)[0]

    def to_blob(self) -> HybridBlob:
        """Compress the filter into its storable blob form."""
        positions = sorted(self.counters)
        pos_payload, pos_bits, pos_param = encode_sorted_set(
            positions, self.bit_count
        )
        # counters are >= 1; encode (count - 1) which is near-geometric
        # (map(...__getitem__) keeps the lookup pass in C)
        counts = [count - 1 for count in map(self.counters.__getitem__, positions)]
        mean = (sum(counts) / len(counts)) if counts else 0.0
        # geometric with mean mu has success probability 1/(1+mu)
        count_param = optimal_golomb_parameter(1.0 / (1.0 + mean))
        count_payload, count_bits = golomb_encode(counts, count_param)
        return HybridBlob(
            bit_count=self.bit_count,
            entry_count=len(positions),
            item_count=self.item_count,
            positions_payload=pos_payload,
            positions_bits=pos_bits,
            positions_parameter=pos_param,
            counters_payload=count_payload,
            counters_bits=count_bits,
            counters_parameter=count_param,
        )

    @classmethod
    def from_blob(cls, blob: HybridBlob) -> "HybridBloomFilter":
        """Decompress a blob back into a filter."""
        instance = cls(blob.bit_count)
        positions = decode_sorted_set(
            blob.positions_payload,
            blob.positions_bits,
            blob.entry_count,
            blob.positions_parameter,
        )
        counts = golomb_decode(
            blob.counters_payload,
            blob.counters_bits,
            blob.entry_count,
            blob.counters_parameter,
        )
        # dict(zip(..., map(...))) builds the counter table without a
        # per-entry Python loop
        instance.counters = dict(zip(positions, map((1).__add__, counts)))
        instance.item_count = blob.item_count
        return instance

    def intersect_positions(self, other: "HybridBloomFilter") -> list[int]:
        """Set-bit positions present in both filters (the bitwise AND of
        Alg. 7, line 4)."""
        if self.bit_count != other.bit_count:
            raise SketchError(
                "cannot intersect filters of different sizes: "
                f"{self.bit_count} vs {other.bit_count}"
            )
        mine = self.counters.keys()
        theirs = other.counters.keys()
        if len(theirs) < len(mine):
            mine, theirs = theirs, mine
        return sorted(p for p in mine if p in theirs)

    def join_cardinality(self, other: "HybridBloomFilter") -> float:
        """α-compensated join size estimate (Alg. 7 lines 7–8 and §5.3).

        Sums the products of matching counters, scaled by
        ``α = (1 - PT_A) * (1 - PT_B)`` to compensate for false positives.
        """
        common = self.intersect_positions(other)
        if not common:
            return 0.0
        raw = sum(self.counters[p] * other.counters[p] for p in common)
        alpha = (1.0 - self.probe_probability()) * (
            1.0 - other.probe_probability()
        )
        return raw * alpha
