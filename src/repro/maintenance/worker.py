"""Asynchronous, crash-recoverable index maintenance (§6).

The synchronous write path (:class:`~repro.maintenance.interceptor.
MaintainedRelation`) applies base + IJLMR + ISL + BFHM mutations inline,
so a heavy write stream stalls queries.  This module decouples them:

* **enqueue** — writers call :meth:`MaintenancePipeline.submit_insert` /
  ``submit_delete`` (or their batch forms).  Each submission is stamped
  with its §6 *original* mutation timestamp and appended to a
  sequence-numbered :class:`~repro.store.wal.SequencedLog`; the writer
  returns immediately.
* **drain** — a maintenance worker applies logged records in batches
  through the PR-5 ``insert_batch`` / resolved-delete path, retrying
  transient store failures with exponential backoff
  (:data:`ASYNC_RETRY_POLICY`), dead-lettering poisoned entries, and
  advancing the log's durable checkpoint marker after every batch.
* **recover** — after a worker crash (see
  :mod:`repro.maintenance.faults`) every in-memory watermark is rebuilt
  from durable state alone (the log, its checkpoint, and the dead-letter
  queue) and the entries after the checkpoint are replayed.  Replays are
  idempotent because every record re-applies with its original timestamp:
  duplicate cells resolve to the same visible versions, so a crashed-and-
  recovered run converges to the never-crashed run's table state.

Delete records carry a durable **resolution**: the first drain resolves
row keys into ``(row key, join value, score)`` triples and writes them
into the WAL record, so a crash between the base tombstone and the index
tombstones cannot strand index entries (re-resolving after the base
delete would find nothing).

Staleness is a first-class contract: :meth:`MaintenancePipeline.staleness`
reports each table's applied-sequence watermark and pending count, the
:class:`~repro.query.statistics.StatisticsCatalog` forwards it to the
planner (EXPLAIN prints it), and :class:`~repro.serving.server.QueryServer`
enforces wait/bounded/shed policies against it.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import MaintenanceError, WALError
from repro.maintenance.consistency import MutationFailedError, RetryPolicy
from repro.maintenance.faults import DrainPoint, FaultPlan
from repro.maintenance.interceptor import MaintainedRelation
from repro.platform import Platform
from repro.store.wal import SequencedLog

#: retry posture of the async worker: patient exponential backoff with
#: deterministic jitter, charged to the simulated clock (a flaky store
#: makes maintenance measurably slower, not silently free)
ASYNC_RETRY_POLICY = RetryPolicy(
    max_attempts=6,
    initial_backoff_s=0.05,
    backoff_multiplier=2.0,
    max_backoff_s=5.0,
    jitter_fraction=0.25,
)

#: records applied (and covered by one checkpoint) per drain batch
DEFAULT_BATCH_SIZE = 32

_OP_INSERT = "insert"
_OP_DELETE = "delete"
#: fixed per-record log overhead (sequence + framing), bytes
_RECORD_OVERHEAD = 16


@dataclass
class MutationRecord:
    """One logged logical mutation (an insert or delete batch).

    ``rows`` is ``((row key, record dict), ...)`` for inserts and
    ``(row key, ...)`` for deletes.  ``timestamp`` is the §6 original
    mutation timestamp, assigned at enqueue time and reused verbatim by
    every (re)application.  ``resolved`` is the delete resolution the
    first drain persisted into this record (``None`` until then, and
    always ``None`` for inserts).
    """

    op: str
    table: str
    rows: tuple
    timestamp: int
    resolved: "tuple | None" = None

    @property
    def row_count(self) -> int:
        """Rows this record mutates."""
        return len(self.rows)

    def estimated_size(self) -> int:
        """Approximate serialized footprint, for log byte accounting."""
        size = _RECORD_OVERHEAD
        if self.op == _OP_INSERT:
            for row_key, record in self.rows:
                size += len(row_key)
                for name, value in record.items():
                    size += len(str(name)) + len(str(value))
        else:
            size += sum(len(row_key) for row_key in self.rows)
        return size


@dataclass(frozen=True)
class DeadLetter:
    """A poisoned record, durably moved aside after exhausting retries."""

    sequence: int
    record: MutationRecord
    reason: str


@dataclass(frozen=True)
class TableStaleness:
    """The bounded-staleness contract of one table's indexes.

    ``applied_sequence`` is the watermark: every logged mutation of this
    table at or below it is reflected in base + indexes.  ``pending`` is
    the number of logged-but-unapplied mutation records (the index lag a
    planner or admission policy reasons about).
    """

    table: str
    pending: int
    applied_sequence: int
    last_sequence: int

    @property
    def fresh(self) -> bool:
        """True when indexes fully reflect the log."""
        return self.pending == 0


class MaintenancePipeline:
    """WAL-backed asynchronous maintenance over a set of relations.

    Usage::

        pipeline = MaintenancePipeline(platform, [orders_rel, lineitem_rel])
        pipeline.submit_insert("orders", "O1", {...})   # returns at once
        pipeline.drain_all()                            # worker catches up

    The pipeline takes over each relation's retry policy (and, when a
    :class:`~repro.maintenance.faults.FaultPlan` is injected, its failure
    injector): the drain path retries with exponential backoff and charges
    the waits to the simulated clock.  All public methods are thread-safe.
    """

    def __init__(
        self,
        platform: Platform,
        relations: Iterable[MaintainedRelation],
        batch_size: int = DEFAULT_BATCH_SIZE,
        retry_policy: RetryPolicy = ASYNC_RETRY_POLICY,
        faults: "FaultPlan | None" = None,
        halt_on_dead_letter: bool = False,
    ) -> None:
        self.platform = platform
        self.batch_size = max(1, int(batch_size))
        self.retry_policy = retry_policy
        self.faults = faults
        #: refuse further drains once a record dead-letters (operators who
        #: prefer a stuck-but-consistent pipeline over partial progress)
        self.halt_on_dead_letter = halt_on_dead_letter

        self._relations: "dict[str, MaintainedRelation]" = {}
        for relation in relations:
            relation.retry_policy = retry_policy
            if faults is not None:
                relation.failure_injector = faults.store_failure
            self._relations[relation.binding.table] = relation

        self.log = SequencedLog()
        self._lock = threading.RLock()
        self._crashed = False  # guarded-by: _lock
        self._halted = False  # guarded-by: _lock
        self._batch_index = 0  # guarded-by: _lock

        # per-table watermarks (rebuilt from durable state by recover())
        self._pending: "dict[str, int]" = {}  # guarded-by: _lock
        self._applied_sequence: "dict[str, int]" = {}  # guarded-by: _lock
        self._last_sequence: "dict[str, int]" = {}  # guarded-by: _lock

        # the DLQ models a durable side queue: a dead-lettered record is
        # out of the replay path even across crashes
        self.dead_letters: "list[DeadLetter]" = []  # guarded-by: _lock
        self._dead_sequences: "set[int]" = set()  # guarded-by: _lock

        # counters (reset nowhere: they describe the pipeline's lifetime)
        self.records_submitted = 0  # guarded-by: _lock
        self.records_applied = 0  # guarded-by: _lock
        self.rows_applied = 0  # guarded-by: _lock
        self.mutation_failures = 0  # guarded-by: _lock
        self.batches_drained = 0  # guarded-by: _lock
        self.recoveries = 0  # guarded-by: _lock

    # -- enqueue -------------------------------------------------------------

    @property
    def tables(self) -> "list[str]":
        """Tables this pipeline maintains."""
        return sorted(self._relations)

    def _relation(self, table: str) -> MaintainedRelation:
        relation = self._relations.get(table)
        if relation is None:
            raise MaintenanceError(
                f"no maintained relation registered for table {table!r}"
            )
        return relation

    def _submit(self, record: MutationRecord) -> int:
        with self._lock:
            entry = self.log.append_payload(record, record.estimated_size())
            self._pending[record.table] = self._pending.get(record.table, 0) + 1
            self._last_sequence[record.table] = entry.sequence
            self.records_submitted += 1
            return entry.sequence

    def submit_insert(self, table: str, row_key: str, record: "dict[str, Any]") -> int:
        """Log one insert; returns its WAL sequence number."""
        return self.submit_insert_batch(table, [(row_key, record)])

    def submit_insert_batch(
        self, table: str, rows: "list[tuple[str, dict[str, Any]]]"
    ) -> int:
        """Log an insert batch sharing one original timestamp; returns its
        sequence (0 when ``rows`` is empty)."""
        self._relation(table)
        if not rows:
            return 0
        frozen = tuple((row_key, dict(record)) for row_key, record in rows)
        timestamp = self.platform.ctx.next_timestamp()
        return self._submit(MutationRecord(_OP_INSERT, table, frozen, timestamp))

    def submit_delete(self, table: str, row_key: str) -> int:
        """Log one delete; returns its WAL sequence number."""
        return self.submit_delete_batch(table, [row_key])

    def submit_delete_batch(self, table: str, row_keys: "list[str]") -> int:
        """Log a delete batch sharing one original timestamp; returns its
        sequence (0 when ``row_keys`` is empty)."""
        self._relation(table)
        if not row_keys:
            return 0
        timestamp = self.platform.ctx.next_timestamp()
        return self._submit(
            MutationRecord(_OP_DELETE, table, tuple(row_keys), timestamp)
        )

    # -- staleness contract --------------------------------------------------

    def staleness(self, table: str) -> TableStaleness:
        """The table's current watermark / lag snapshot."""
        with self._lock:
            return TableStaleness(
                table=table,
                pending=self._pending.get(table, 0),
                applied_sequence=self._applied_sequence.get(table, 0),
                last_sequence=self._last_sequence.get(table, 0),
            )

    def lag(self, table: "str | None" = None) -> int:
        """Unapplied mutation records (of ``table``, or in total)."""
        with self._lock:
            if table is not None:
                return self._pending.get(table, 0)
            return sum(self._pending.values())

    def backlog_bytes(self) -> int:
        """Bytes of logged-but-untruncated mutation payloads."""
        with self._lock:
            return self.log.byte_size

    @property
    def applied_sequence(self) -> int:
        """The global durable watermark (the log's checkpoint)."""
        return self.log.checkpoint_sequence

    @property
    def crashed(self) -> bool:
        """True after an (injected) worker crash until :meth:`recover`."""
        with self._lock:
            return self._crashed

    # -- draining ------------------------------------------------------------

    def _reach(self, point: str) -> None:  # lint: holds-lock(_lock)
        """Announce a drain point; injected crashes surface here.

        Only called from :meth:`drain_batch`, which already holds ``_lock``.
        """
        if self.faults is not None:
            try:
                self.faults.on_drain_point(point, self._batch_index)
            except BaseException:
                # the worker process dies here: in-memory watermarks are
                # no longer trustworthy until recover() rebuilds them
                self._crashed = True
                raise

    def _apply_record(self, sequence: int, record: MutationRecord) -> None:  # lint: holds-lock(_lock)
        """Apply one record (resolving deletes first) with §6 semantics.

        Only called from :meth:`drain_batch`, which already holds ``_lock``.
        """
        relation = self._relation(record.table)
        if record.op == _OP_DELETE:
            if record.resolved is None:
                # persist the resolution into the WAL record *before* any
                # tombstone lands: this is the durable write that makes
                # delete replay idempotent
                record.resolved = tuple(relation.resolve_deletes(list(record.rows)))
            self._reach(DrainPoint.AFTER_RESOLVE)
            applied = relation.apply_resolved_deletes(
                list(record.resolved), timestamp=record.timestamp
            )
            self.rows_applied += applied
        else:
            relation.insert_batch(list(record.rows), timestamp=record.timestamp)
            self.rows_applied += record.row_count
        self._reach(DrainPoint.AFTER_APPLY)
        self.records_applied += 1
        self._pending[record.table] = max(0, self._pending.get(record.table, 0) - 1)
        self._applied_sequence[record.table] = max(
            self._applied_sequence.get(record.table, 0), sequence
        )

    def drain_batch(self) -> int:
        """Apply (up to) one batch of pending records; returns how many
        records made progress (applied or dead-lettered).

        One durable checkpoint covers the whole batch; a crash anywhere
        before it replays the entire batch idempotently.
        """
        with self._lock:
            if self._crashed:
                raise MaintenanceError(
                    "maintenance worker crashed; call recover() before draining"
                )
            if self._halted:
                raise MaintenanceError(
                    "maintenance pipeline halted on a dead-lettered record"
                )
            allowance = self.batch_size
            if self.faults is not None:
                allowance = self.faults.drain_allowance(allowance)
            pending = [
                entry
                for entry in self.log.entries_after(self.log.checkpoint_sequence)
                if entry.sequence not in self._dead_sequences
            ][:allowance]
            if not pending:
                return 0
            self._batch_index += 1
            self._reach(DrainPoint.BATCH_START)
            progressed = 0
            for entry in pending:
                try:
                    self._apply_record(entry.sequence, entry.payload)
                except MutationFailedError as error:
                    self.mutation_failures += 1
                    self.dead_letters.append(
                        DeadLetter(entry.sequence, entry.payload, repr(error))
                    )
                    self._dead_sequences.add(entry.sequence)
                    self._pending[entry.payload.table] = max(
                        0, self._pending.get(entry.payload.table, 0) - 1
                    )
                    if self.halt_on_dead_letter:
                        self._halted = True
                        raise
                progressed += 1
            self.log.checkpoint(pending[-1].sequence)
            self._reach(DrainPoint.AFTER_CHECKPOINT)
            self.log.truncate_to()
            self.batches_drained += 1
            return progressed

    def drain_all(self, max_batches: "int | None" = None) -> int:
        """Drain until the backlog is empty (or ``max_batches`` ran);
        returns total records progressed."""
        total = 0
        batches = 0
        while True:
            progressed = self.drain_batch()
            if progressed == 0:
                return total
            total += progressed
            batches += 1
            if max_batches is not None and batches >= max_batches:
                return total

    def drain_until(self, sequence: int) -> None:
        """Drain until the durable watermark covers ``sequence`` (the
        read-your-writes wait used by the serving layer)."""
        while self.log.checkpoint_sequence < sequence:
            if self.drain_batch() == 0 and self.log.checkpoint_sequence < sequence:
                raise WALError(
                    f"cannot drain to sequence {sequence}: backlog empty at "
                    f"checkpoint {self.log.checkpoint_sequence}"
                )

    # -- crash recovery ------------------------------------------------------

    def recover(self) -> int:
        """Rebuild worker state from durable state only, then return the
        number of records awaiting replay.

        Models a fresh worker process attaching to the log after a crash:
        every in-memory watermark is discarded and recomputed from the
        retained records, the checkpoint marker, and the durable DLQ.
        Entries after the checkpoint (minus dead letters) will be replayed
        by the next drains — idempotently, thanks to original-timestamp
        reapplication and persisted delete resolutions.
        """
        with self._lock:
            checkpoint = self.log.checkpoint_sequence
            self._pending = {}
            self._applied_sequence = {table: checkpoint for table in self._relations}
            replayable = 0
            for entry in self.log.entries_after(checkpoint):
                if entry.sequence in self._dead_sequences:
                    continue
                table = entry.payload.table
                self._pending[table] = self._pending.get(table, 0) + 1
                self._last_sequence[table] = max(
                    self._last_sequence.get(table, 0), entry.sequence
                )
                replayable += 1
            if self.faults is not None:
                self.faults.reset()
            self._crashed = False
            self._halted = False
            self.recoveries += 1
            return replayable

    def retry_dead_letters(self) -> int:
        """Re-apply dead-lettered records (oldest first) now that the
        store presumably recovered; returns how many succeeded.

        Original timestamps make re-application idempotent even when the
        poisoned record had partially applied before dead-lettering.
        """
        with self._lock:
            retained: "list[DeadLetter]" = []
            succeeded = 0
            for letter in self.dead_letters:
                try:
                    self._pending[letter.record.table] = (
                        self._pending.get(letter.record.table, 0) + 1
                    )
                    self._apply_record(letter.sequence, letter.record)
                    self._dead_sequences.discard(letter.sequence)
                    succeeded += 1
                except MutationFailedError:
                    self.mutation_failures += 1
                    self._pending[letter.record.table] = max(
                        0, self._pending.get(letter.record.table, 0) - 1
                    )
                    retained.append(letter)
            self.dead_letters = retained
            return succeeded

    # -- introspection -------------------------------------------------------

    def stats(self) -> "dict[str, object]":
        """Counters + per-table staleness (what ``QueryServer.stats()``
        surfaces so operators see stuck maintenance, not silent lag)."""
        with self._lock:
            return {
                "records_submitted": self.records_submitted,
                "records_applied": self.records_applied,
                "rows_applied": self.rows_applied,
                "batches_drained": self.batches_drained,
                "mutation_failures": self.mutation_failures,
                "dead_letters": len(self.dead_letters),
                "recoveries": self.recoveries,
                "backlog": sum(self._pending.values()),
                "backlog_bytes": self.log.byte_size,
                "applied_sequence": self.log.checkpoint_sequence,
                "last_sequence": self.log.last_sequence,
                "crashed": self._crashed,
                "staleness": {
                    table: self._pending.get(table, 0) for table in self.tables
                },
            }


class BackgroundDrainer:
    """A daemon thread that keeps a pipeline drained.

    When a :class:`~repro.serving.server.QueryServer` is given, every
    drain batch runs inside ``server.maintenance(...)`` — taking the
    write-preferring lock so queries never observe a half-applied batch,
    and bumping the drained tables' statistics versions on release.
    """

    def __init__(
        self,
        pipeline: MaintenancePipeline,
        server: "Any | None" = None,
        interval_s: float = 0.005,
    ) -> None:
        self.pipeline = pipeline
        self.server = server
        self.interval_s = interval_s
        self._stop = threading.Event()
        self._thread: "threading.Thread | None" = None

    def _drain_once(self) -> int:
        if self.server is not None:
            with self.server.maintenance(*self.pipeline.tables):
                return self.pipeline.drain_batch()
        return self.pipeline.drain_batch()

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                progressed = self._drain_once()
            except MaintenanceError:
                return  # crashed or halted: stop draining until recovery
            if progressed == 0:
                self._stop.wait(self.interval_s)

    def start(self) -> "BackgroundDrainer":
        """Start the drain thread (idempotent); returns self."""
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="maintenance-drain", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, drain: bool = True, timeout_s: float = 10.0) -> None:
        """Stop the thread; ``drain=True`` first waits for an empty backlog."""
        if drain:
            # real-thread pacing of the drain loop — never feeds the
            # simulated cost model, so wall-clock use here is sound
            deadline = time.monotonic() + timeout_s  # lint: disable=RL201 (real-thread shutdown deadline, not simulated time)
            while self.pipeline.lag() > 0 and time.monotonic() < deadline:  # lint: disable=RL201 (real-thread shutdown deadline, not simulated time)
                if self.pipeline.crashed:
                    break
                time.sleep(self.interval_s)  # lint: disable=RL201 (real-thread drain pacing, not simulated time)
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout_s)
