"""Fault injection for the asynchronous maintenance pipeline.

Chaos testing the §6 eventual-consistency story needs three failure
families, each modelled by a pluggable injector:

* :class:`StoreFaultInjector` — transient store RPC failures.  Plugs into
  :func:`~repro.maintenance.consistency.with_retries` as a
  ``failure_injector`` and fails a configured number of attempts per
  mutation (or every attempt, to poison an entry into the dead-letter
  queue).
* :class:`CrashInjector` — hard worker crashes.  The drain loop announces
  every :class:`DrainPoint` it passes through; the injector raises
  :class:`~repro.errors.WorkerCrashError` at the n-th occurrence of its
  target point, wiping the worker's in-memory state mid-drain.  Recovery
  must then replay the WAL from the last checkpoint.
* :class:`SlowDrainInjector` — a lagging worker.  Caps how many entries a
  drain call may apply, so the backlog (and the staleness the planner
  reports) grows under sustained ingest.

A :class:`FaultPlan` composes any number of injectors and is handed to
:class:`~repro.maintenance.worker.MaintenancePipeline`.  All injectors are
deterministic — a chaos test that fails replays identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import WorkerCrashError


class DrainPoint:
    """Named positions inside one drain batch where a crash can land.

    The worker passes through them in order: ``BATCH_START`` (batch
    dequeued, nothing applied), ``AFTER_RESOLVE`` (delete targets resolved
    and persisted to the WAL record), ``AFTER_APPLY`` (base + index
    mutations applied, checkpoint not yet advanced), and
    ``AFTER_CHECKPOINT`` (checkpoint durable, truncation pending).
    """

    BATCH_START = "batch_start"
    AFTER_RESOLVE = "after_resolve"
    AFTER_APPLY = "after_apply"
    AFTER_CHECKPOINT = "after_checkpoint"

    #: every point, in drain order (chaos suites sweep this list)
    ALL = (BATCH_START, AFTER_RESOLVE, AFTER_APPLY, AFTER_CHECKPOINT)


class Injector:
    """Base injector: no-op hooks the concrete fault families override."""

    def on_drain_point(self, point: str, batch_index: int) -> None:
        """Called at every drain point; may raise to crash the worker."""

    def store_failure(self, attempt: int) -> bool:
        """Return True to fail store-mutation ``attempt`` (0-based)."""
        return False

    def drain_allowance(self, requested: int) -> int:
        """Entries the drain call may apply (default: all requested)."""
        return requested

    def reset(self) -> None:
        """Forget occurrence counters (a recovered worker starts clean)."""


@dataclass
class StoreFaultInjector(Injector):
    """Fail the first ``failures_per_mutation`` attempts of every store
    mutation — and *every* attempt of the first ``poison_mutations``
    mutations, which therefore exhaust their retries and dead-letter.

    ``with_retries`` calls :meth:`store_failure` once per attempt; attempt
    numbers restart at 0 for each mutation, which is how the injector
    tells mutations apart without any shared clock.  A "mutation" here is
    one retried store call (the interceptor issues one per table touched
    by a batch).
    """

    failures_per_mutation: int = 0
    poison_mutations: int = 0
    #: total injected failures (for assertions on retry accounting)
    injected: int = field(default=0, init=False)
    _mutation_index: int = field(default=-1, init=False, repr=False)

    def store_failure(self, attempt: int) -> bool:
        """Inject a failure according to the configured pattern."""
        if attempt == 0:
            self._mutation_index += 1
        fail = (
            self._mutation_index < self.poison_mutations
            or attempt < self.failures_per_mutation
        )
        if fail:
            self.injected += 1
        return fail


@dataclass
class CrashInjector(Injector):
    """Raise :class:`WorkerCrashError` at the ``occurrence``-th time the
    drain loop reaches ``point`` (1-based; occurrence 1 = first time)."""

    point: str
    occurrence: int = 1
    fired: bool = field(default=False, init=False)
    _seen: int = field(default=0, init=False, repr=False)

    def on_drain_point(self, point: str, batch_index: int) -> None:
        """Count occurrences of the target point; crash on the n-th."""
        if self.fired or point != self.point:
            return
        self._seen += 1
        if self._seen >= self.occurrence:
            self.fired = True
            raise WorkerCrashError(point, self._seen)

    def reset(self) -> None:
        """A recovered worker must not immediately re-crash."""
        self._seen = 0


@dataclass
class SlowDrainInjector(Injector):
    """Throttle each drain call to ``max_entries_per_drain`` entries,
    simulating a worker that cannot keep up with the ingest rate."""

    max_entries_per_drain: int = 1

    def drain_allowance(self, requested: int) -> int:
        """Cap the batch size at the configured throttle."""
        return min(requested, self.max_entries_per_drain)


@dataclass
class FaultPlan:
    """A composition of injectors, consulted by the maintenance worker.

    The worker calls :meth:`on_drain_point` at every drain point (any
    injector may crash it), uses :meth:`store_failure` as the retry-loop
    failure injector, and asks :meth:`drain_allowance` before sizing each
    batch.
    """

    injectors: "list[Injector]" = field(default_factory=list)

    def add(self, injector: Injector) -> "FaultPlan":
        """Register one more injector; returns self for chaining."""
        self.injectors.append(injector)
        return self

    def on_drain_point(self, point: str, batch_index: int) -> None:
        """Fan the drain-point announcement out to every injector."""
        for injector in self.injectors:
            injector.on_drain_point(point, batch_index)

    def store_failure(self, attempt: int) -> bool:
        """True when any injector fails this store attempt."""
        return any(injector.store_failure(attempt) for injector in self.injectors)

    def drain_allowance(self, requested: int) -> int:
        """The most restrictive allowance across injectors."""
        allowance = requested
        for injector in self.injectors:
            allowance = min(allowance, injector.drain_allowance(requested))
        return max(0, allowance)

    def reset(self) -> None:
        """Reset every injector (called by pipeline recovery)."""
        for injector in self.injectors:
            injector.reset()
