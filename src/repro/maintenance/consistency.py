"""Eventual-consistency helpers (§6).

"We have opted for eventual consistency ... failed mutations are retried
until successful and key-value timestamps are used to discern between fresh
and stale tuples."  :func:`with_retries` wraps a mutation so transient
failures (injectable, for tests) are retried; because all retried writes
carry the *original* mutation timestamp, replays are idempotent and later
writes are never masked by earlier retried ones.

Retries can back off exponentially with deterministic jitter.  The backoff
wait is *simulated* time: when a metrics collector is passed, each retry
charges its delay to the cost model (``advance_time``) instead of spinning
in a zero-cost loop — so a flaky store visibly inflates a maintenance
batch's simulated latency, exactly as it would a real deployment's.  The
frozen default policy keeps ``initial_backoff_s=0`` so every existing
caller retries immediately and bills nothing, byte-identically to before.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.errors import ReproError

T = TypeVar("T")

#: Knuth's multiplicative-hash constant; spreads attempt numbers over
#: [0, 2^32) for deterministic, seedable backoff jitter
_JITTER_HASH = 2654435761


class MutationFailedError(ReproError):
    """A mutation exhausted its retry budget."""


@dataclass(frozen=True)
class RetryPolicy:
    """How persistently — and how patiently — to retry failed mutations.

    The default is the historical behavior: up to 8 immediate attempts
    with no backoff and no cost.  Asynchronous maintenance uses a policy
    with ``initial_backoff_s > 0``: attempt ``n`` (0-based) then waits
    ``initial_backoff_s * backoff_multiplier**n`` seconds (capped at
    ``max_backoff_s``), de-synchronized by deterministic jitter of up to
    ``jitter_fraction`` of the delay.  Jitter is a pure function of
    ``(jitter_seed, attempt)``, so retry schedules — and the simulated
    latency they charge — are exactly reproducible.
    """

    max_attempts: int = 8
    initial_backoff_s: float = 0.0
    backoff_multiplier: float = 2.0
    max_backoff_s: float = 60.0
    jitter_fraction: float = 0.0
    jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1: {self.max_attempts}")
        if self.initial_backoff_s < 0:
            raise ValueError(
                f"initial_backoff_s must be >= 0: {self.initial_backoff_s}"
            )
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ValueError(
                f"jitter_fraction must be in [0, 1]: {self.jitter_fraction}"
            )

    def backoff_s(self, attempt: int) -> float:
        """Simulated wait after failed attempt ``attempt`` (0-based).

        Deterministic: exponential growth capped at ``max_backoff_s``,
        shrunk by up to ``jitter_fraction`` via a multiplicative hash of
        the attempt number (decorrelating concurrent retriers without any
        randomness).
        """
        if self.initial_backoff_s <= 0:
            return 0.0
        delay = self.initial_backoff_s * (self.backoff_multiplier ** attempt)
        delay = min(delay, self.max_backoff_s)
        if self.jitter_fraction > 0:
            unit = (((attempt + self.jitter_seed) * _JITTER_HASH) & 0xFFFFFFFF) / 2**32
            delay *= 1.0 - self.jitter_fraction * unit
        return delay


def with_retries(
    mutation: Callable[[], T],
    policy: RetryPolicy = RetryPolicy(),
    failure_injector: "Callable[[int], bool] | None" = None,
    metrics=None,
) -> T:
    """Run ``mutation`` until it succeeds or the retry budget is spent.

    ``failure_injector(attempt)`` returning True simulates a transient
    store failure on that attempt (used by fault-injection tests).  When
    ``metrics`` (anything with ``advance_time(seconds)``, normally a
    :class:`~repro.cluster.metrics.MetricsCollector`) is given, each
    retry's backoff delay is charged to it as simulated latency.
    """
    last_error: "Exception | None" = None
    for attempt in range(policy.max_attempts):
        failed = False
        if failure_injector is not None and failure_injector(attempt):
            last_error = MutationFailedError(f"injected failure on attempt {attempt}")
            failed = True
        else:
            try:
                return mutation()
            except ReproError as error:
                last_error = error
                failed = True
        if failed and metrics is not None and attempt + 1 < policy.max_attempts:
            delay = policy.backoff_s(attempt)
            if delay > 0:
                metrics.advance_time(delay)
    raise MutationFailedError(
        f"mutation failed after {policy.max_attempts} attempts"
    ) from last_error
