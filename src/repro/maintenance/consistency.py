"""Eventual-consistency helpers (§6).

"We have opted for eventual consistency ... failed mutations are retried
until successful and key-value timestamps are used to discern between fresh
and stale tuples."  :func:`with_retries` wraps a mutation so transient
failures (injectable, for tests) are retried; because all retried writes
carry the *original* mutation timestamp, replays are idempotent and later
writes are never masked by earlier retried ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.errors import ReproError

T = TypeVar("T")


class MutationFailedError(ReproError):
    """A mutation exhausted its retry budget."""


@dataclass(frozen=True)
class RetryPolicy:
    """How persistently to retry failed mutations."""

    max_attempts: int = 8

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1: {self.max_attempts}")


def with_retries(
    mutation: Callable[[], T],
    policy: RetryPolicy = RetryPolicy(),
    failure_injector: "Callable[[int], bool] | None" = None,
) -> T:
    """Run ``mutation`` until it succeeds or the retry budget is spent.

    ``failure_injector(attempt)`` returning True simulates a transient
    store failure on that attempt (used by fault-injection tests).
    """
    last_error: "Exception | None" = None
    for attempt in range(policy.max_attempts):
        if failure_injector is not None and failure_injector(attempt):
            last_error = MutationFailedError(f"injected failure on attempt {attempt}")
            continue
        try:
            return mutation()
        except ReproError as error:
            last_error = error
    raise MutationFailedError(
        f"mutation failed after {policy.max_attempts} attempts"
    ) from last_error
