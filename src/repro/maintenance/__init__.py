"""Online index maintenance (§6)."""

from repro.maintenance.consistency import RetryPolicy, with_retries
from repro.maintenance.interceptor import MaintainedRelation

__all__ = ["RetryPolicy", "with_retries", "MaintainedRelation"]
