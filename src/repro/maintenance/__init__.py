"""Online index maintenance (§6): synchronous interception and the
asynchronous, crash-recoverable WAL-drain pipeline."""

from repro.maintenance.consistency import RetryPolicy, with_retries
from repro.maintenance.faults import (
    CrashInjector,
    DrainPoint,
    FaultPlan,
    SlowDrainInjector,
    StoreFaultInjector,
)
from repro.maintenance.interceptor import MaintainedRelation
from repro.maintenance.worker import (
    ASYNC_RETRY_POLICY,
    BackgroundDrainer,
    MaintenancePipeline,
    TableStaleness,
)

__all__ = [
    "ASYNC_RETRY_POLICY",
    "BackgroundDrainer",
    "CrashInjector",
    "DrainPoint",
    "FaultPlan",
    "MaintainedRelation",
    "MaintenancePipeline",
    "RetryPolicy",
    "SlowDrainInjector",
    "StoreFaultInjector",
    "TableStaleness",
    "with_retries",
]
