"""Mutation interception keeping indices in sync with base data (§6).

"Both insertions and deletions are intercepted at the caller level; then,
the mutation is augmented so as to perform both a base data and an index
insertion/deletion in one operation, using the original mutation timestamp
for both operations."

A :class:`MaintainedRelation` wraps one base relation and fans every
insert/delete out to whichever indices are registered for it: IJLMR and ISL
rows are mutated directly (they are plain inverted lists), and BFHM goes
through its update manager (reverse mapping + insertion/tombstone records).

Mutations also invalidate the planner's cached table statistics (when a
``statistics_catalog`` is attached), so ``algorithm="auto"`` plans keep
pricing against fresh row counts and histograms as data changes online.
"""

from __future__ import annotations

from typing import Any

from repro.common.serialization import encode_float, encode_score_key, encode_str
from repro.core.bfhm.updates import BFHMUpdateManager
from repro.core.indexes import IJLMR_TABLE, ISL_TABLE
from repro.errors import QueryError
from repro.maintenance.consistency import RetryPolicy, with_retries
from repro.platform import Platform
from repro.relational.binding import RelationBinding, row_to_scored
from repro.store.client import Delete, Put


class MaintainedRelation:
    """Write path of one base relation with synchronized indices."""

    def __init__(
        self,
        platform: Platform,
        binding: RelationBinding,
        maintain_ijlmr: bool = False,
        maintain_isl: bool = False,
        bfhm_manager: "BFHMUpdateManager | None" = None,
        retry_policy: RetryPolicy = RetryPolicy(),
        failure_injector=None,
        statistics_catalog=None,
    ) -> None:
        self.platform = platform
        self.binding = binding
        self.maintain_ijlmr = maintain_ijlmr
        self.maintain_isl = maintain_isl
        self.bfhm_manager = bfhm_manager
        self.retry_policy = retry_policy
        self.failure_injector = failure_injector
        #: anything with an ``invalidate(table_name)`` method — normally a
        #: :class:`repro.query.statistics.StatisticsCatalog` (duck-typed to
        #: keep the maintenance layer import-free of the query layer)
        self.statistics_catalog = statistics_catalog
        self.inserts_applied = 0
        self.deletes_applied = 0

    # -- helpers -------------------------------------------------------------

    def _invalidate_statistics(self) -> None:
        if self.statistics_catalog is not None:
            self.statistics_catalog.invalidate(self.binding.table)

    def _retry(self, mutation) -> Any:
        return with_retries(mutation, self.retry_policy, self.failure_injector)

    def _encode_column(self, name: str, value: Any) -> bytes:
        from repro.tpch.loader import FLOAT_COLUMNS

        if name in FLOAT_COLUMNS or isinstance(value, float):
            return encode_float(float(value))
        return encode_str(str(value))

    # -- inserts ---------------------------------------------------------------

    def insert(self, row_key: str, record: "dict[str, Any]") -> None:
        """Insert one record into the base table and all indices, sharing
        one mutation timestamp."""
        binding = self.binding
        if binding.join_column not in record or binding.score_column not in record:
            raise QueryError(
                f"record for {row_key!r} lacks join/score columns "
                f"{binding.join_column!r}/{binding.score_column!r}"
            )
        join_value = str(record[binding.join_column])
        score = float(record[binding.score_column])
        timestamp = self.platform.ctx.next_timestamp()

        base_put = Put(row_key, timestamp=timestamp)
        for name, value in record.items():
            if name == "rowkey":
                continue
            base_put.add(binding.family, name, self._encode_column(name, value))
        htable = self.platform.store.table(binding.table)
        self._retry(lambda: htable.put(base_put))

        if self.maintain_ijlmr:
            index_put = Put(join_value, timestamp=timestamp)
            index_put.add(binding.signature, row_key, encode_float(score))
            ijlmr = self.platform.store.table(IJLMR_TABLE)
            self._retry(lambda: ijlmr.put(index_put))

        if self.maintain_isl:
            index_put = Put(encode_score_key(score), timestamp=timestamp)
            index_put.add(binding.signature, row_key, encode_str(join_value))
            isl = self.platform.store.table(ISL_TABLE)
            self._retry(lambda: isl.put(index_put))

        if self.bfhm_manager is not None:
            self._retry(
                lambda: self.bfhm_manager.apply_insert(
                    binding.signature, row_key, join_value, score, timestamp
                )
            )
        self.inserts_applied += 1
        self._invalidate_statistics()

    # -- deletes ------------------------------------------------------------------

    def delete(self, row_key: str) -> bool:
        """Delete one row from the base table and all indices.

        Returns False (and does nothing) if the row does not exist.
        """
        binding = self.binding
        backing = self.platform.store.backing(binding.table)
        existing = backing.read_row(row_key, families={binding.family})
        if existing.empty:
            return False
        scored = row_to_scored(binding, existing)
        timestamp = self.platform.ctx.next_timestamp()

        htable = self.platform.store.table(binding.table)
        self._retry(
            lambda: htable.delete(Delete(row_key, timestamp=timestamp))
        )

        if self.maintain_ijlmr:
            ijlmr = self.platform.store.table(IJLMR_TABLE)
            self._retry(
                lambda: ijlmr.delete(
                    Delete(scored.join_value, family=binding.signature,
                           qualifier=row_key, timestamp=timestamp)
                )
            )

        if self.maintain_isl:
            isl = self.platform.store.table(ISL_TABLE)
            self._retry(
                lambda: isl.delete(
                    Delete(encode_score_key(scored.score),
                           family=binding.signature,
                           qualifier=row_key, timestamp=timestamp)
                )
            )

        if self.bfhm_manager is not None:
            self._retry(
                lambda: self.bfhm_manager.apply_delete(
                    binding.signature, row_key, scored.join_value,
                    scored.score, timestamp,
                )
            )
        self.deletes_applied += 1
        self._invalidate_statistics()
        return True
