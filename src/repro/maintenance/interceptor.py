"""Mutation interception keeping indices in sync with base data (§6).

"Both insertions and deletions are intercepted at the caller level; then,
the mutation is augmented so as to perform both a base data and an index
insertion/deletion in one operation, using the original mutation timestamp
for both operations."

A :class:`MaintainedRelation` wraps one base relation and fans every
insert/delete out to whichever indices are registered for it: IJLMR and ISL
rows are mutated directly (they are plain inverted lists), and BFHM goes
through its update manager (reverse mapping + insertion/tombstone records).

Mutations also invalidate the planner's cached table statistics (when a
``statistics_catalog`` is attached), so ``algorithm="auto"`` plans keep
pricing against fresh row counts and histograms as data changes online.
"""

from __future__ import annotations

from typing import Any

from repro.common.serialization import encode_float, encode_score_key, encode_str
from repro.core.bfhm.updates import BFHMUpdateManager
from repro.core.indexes import IJLMR_TABLE, ISL_TABLE
from repro.errors import QueryError
from repro.maintenance.consistency import RetryPolicy, with_retries
from repro.platform import Platform
from repro.relational.binding import RelationBinding, row_to_scored
from repro.store.client import Delete, Put
from repro.tpch.loader import FLOAT_COLUMNS


class MaintainedRelation:
    """Write path of one base relation with synchronized indices."""

    def __init__(
        self,
        platform: Platform,
        binding: RelationBinding,
        maintain_ijlmr: bool = False,
        maintain_isl: bool = False,
        bfhm_manager: "BFHMUpdateManager | None" = None,
        retry_policy: RetryPolicy = RetryPolicy(),
        failure_injector=None,
        statistics_catalog=None,
    ) -> None:
        self.platform = platform
        self.binding = binding
        self.maintain_ijlmr = maintain_ijlmr
        self.maintain_isl = maintain_isl
        self.bfhm_manager = bfhm_manager
        self.retry_policy = retry_policy
        self.failure_injector = failure_injector
        #: anything with an ``invalidate(table_name)`` method — normally a
        #: :class:`repro.query.statistics.StatisticsCatalog` (duck-typed to
        #: keep the maintenance layer import-free of the query layer)
        self.statistics_catalog = statistics_catalog
        self.inserts_applied = 0
        self.deletes_applied = 0

    # -- helpers -------------------------------------------------------------

    def _invalidate_statistics(self) -> None:
        if self.statistics_catalog is not None:
            self.statistics_catalog.invalidate(self.binding.table)

    def _retry(self, mutation) -> Any:
        # the metrics sink only matters for policies with backoff: retry
        # waits are charged as simulated latency (the default zero-backoff
        # policy charges nothing, keeping the synchronous path frozen)
        return with_retries(
            mutation,
            self.retry_policy,
            self.failure_injector,
            metrics=self.platform.metrics,
        )

    def _encode_column(self, name: str, value: Any) -> bytes:
        if name in FLOAT_COLUMNS or isinstance(value, float):
            return encode_float(float(value))
        return encode_str(str(value))

    # -- inserts ---------------------------------------------------------------

    def insert(self, row_key: str, record: "dict[str, Any]") -> None:
        """Insert one record into the base table and all indices, sharing
        one mutation timestamp."""
        self.insert_batch([(row_key, record)])

    def insert_batch(
        self,
        rows: "list[tuple[str, dict[str, Any]]]",
        timestamp: "int | None" = None,
    ) -> None:
        """Insert many records as one intercepted bulk mutation.

        The whole batch shares a single mutation timestamp (§6 augments
        index mutations with "the original mutation timestamp", and here
        the original mutation is the batch); base, IJLMR, and ISL writes
        each go out as one ``put_batch`` per table (index puts coalesced
        per index row), BFHM mutations through
        :meth:`~repro.core.bfhm.updates.BFHMUpdateManager.apply_insert_batch`,
        and planner statistics are invalidated once at the end — not once
        per record.

        ``timestamp`` lets the async maintenance worker replay a logged
        mutation with its *original* enqueue timestamp (§6), making crash
        replays idempotent; synchronous callers leave it ``None`` and get
        a fresh timestamp exactly as before.
        """
        if not rows:
            return
        binding = self.binding
        scored: "list[tuple[str, str, float]]" = []
        for row_key, record in rows:
            if binding.join_column not in record or binding.score_column not in record:
                raise QueryError(
                    f"record for {row_key!r} lacks join/score columns "
                    f"{binding.join_column!r}/{binding.score_column!r}"
                )
            scored.append(
                (
                    row_key,
                    str(record[binding.join_column]),
                    float(record[binding.score_column]),
                )
            )
        if timestamp is None:
            timestamp = self.platform.ctx.next_timestamp()

        base_puts = []
        for row_key, record in rows:
            base_put = Put(row_key, timestamp=timestamp)
            for name, value in record.items():
                if name == "rowkey":
                    continue
                base_put.add(binding.family, name, self._encode_column(name, value))
            base_puts.append(base_put)
        htable = self.platform.store.table(binding.table)
        self._retry(lambda: htable.put_batch(base_puts))

        if self.maintain_ijlmr:
            by_row: dict[str, Put] = {}
            for row_key, join_value, score in scored:
                index_put = by_row.get(join_value)
                if index_put is None:
                    index_put = by_row[join_value] = Put(
                        join_value, timestamp=timestamp
                    )
                index_put.add(binding.signature, row_key, encode_float(score))
            ijlmr = self.platform.store.table(IJLMR_TABLE)
            ijlmr_puts = list(by_row.values())
            self._retry(lambda: ijlmr.put_batch(ijlmr_puts))

        if self.maintain_isl:
            by_row = {}
            for row_key, join_value, score in scored:
                score_key = encode_score_key(score)
                index_put = by_row.get(score_key)
                if index_put is None:
                    index_put = by_row[score_key] = Put(
                        score_key, timestamp=timestamp
                    )
                index_put.add(binding.signature, row_key, encode_str(join_value))
            isl = self.platform.store.table(ISL_TABLE)
            isl_puts = list(by_row.values())
            self._retry(lambda: isl.put_batch(isl_puts))

        if self.bfhm_manager is not None:
            self._retry(
                lambda: self.bfhm_manager.apply_insert_batch(
                    binding.signature, scored, timestamp
                )
            )
        self.inserts_applied += len(rows)
        self._invalidate_statistics()

    # -- deletes ------------------------------------------------------------------

    def delete(self, row_key: str) -> bool:
        """Delete one row from the base table and all indices.

        Returns False (and does nothing) if the row does not exist.
        """
        return self.delete_batch([row_key]) == 1

    def delete_batch(
        self, row_keys: "list[str]", timestamp: "int | None" = None
    ) -> int:
        """Delete many rows as one intercepted bulk mutation.

        Missing rows are skipped.  Like :meth:`insert_batch`, the batch
        shares one mutation timestamp, index tombstones go out as one
        batched call per table, and statistics are invalidated once.
        Base-table deletes stay per-row (a whole-row delete performs a
        metered read to discover its columns).  Returns the number of rows
        actually deleted.
        """
        found = self.resolve_deletes(row_keys)
        return self.apply_resolved_deletes(found, timestamp)

    def resolve_deletes(
        self, row_keys: "list[str]"
    ) -> "list[tuple[str, str, float]]":
        """Resolve delete targets into ``(row key, join value, score)``.

        The unmetered existence read of :meth:`delete_batch`, split out so
        the async maintenance worker can resolve a logged delete *once*,
        persist the resolution in its WAL record, and replay the apply
        phase idempotently after a crash (re-resolving after the base
        tombstone landed would find nothing and strand index entries).
        Missing and duplicate row keys are dropped.
        """
        binding = self.binding
        backing = self.platform.store.backing(binding.table)
        found: "list[tuple[str, str, float]]" = []
        # dedupe up front: all existence reads happen before any tombstone
        # lands, so a repeated key would otherwise count (and mutate) twice
        for row_key in dict.fromkeys(row_keys):
            existing = backing.read_row(row_key, families={binding.family})  # lint: disable=RL301 (delete resolution is billed as one batched read by the caller, not per probed row)
            if not existing.empty:
                scored = row_to_scored(binding, existing)
                found.append((row_key, scored.join_value, scored.score))
        return found

    def apply_resolved_deletes(
        self,
        found: "list[tuple[str, str, float]]",
        timestamp: "int | None" = None,
    ) -> int:
        """Apply pre-resolved deletes to the base table and all indices.

        ``found`` is :meth:`resolve_deletes` output; ``timestamp`` follows
        the same §6 original-timestamp rule as :meth:`insert_batch`.
        Applying the same resolution twice with the same timestamp writes
        byte-identical tombstones, so crash replays converge.
        """
        binding = self.binding
        if not found:
            return 0
        if timestamp is None:
            timestamp = self.platform.ctx.next_timestamp()

        htable = self.platform.store.table(binding.table)
        for row_key, _, _ in found:
            self._retry(
                lambda row=row_key: htable.delete(Delete(row, timestamp=timestamp))
            )

        if self.maintain_ijlmr:
            deletes = [
                Delete(join_value, family=binding.signature,
                       qualifier=row_key, timestamp=timestamp)
                for row_key, join_value, _ in found
            ]
            ijlmr = self.platform.store.table(IJLMR_TABLE)
            self._retry(lambda: ijlmr.delete_batch(deletes))

        if self.maintain_isl:
            isl_deletes = [
                Delete(encode_score_key(score), family=binding.signature,
                       qualifier=row_key, timestamp=timestamp)
                for row_key, _, score in found
            ]
            isl = self.platform.store.table(ISL_TABLE)
            self._retry(lambda: isl.delete_batch(isl_deletes))

        if self.bfhm_manager is not None:
            self._retry(
                lambda: self.bfhm_manager.apply_delete_batch(
                    binding.signature, list(found), timestamp
                )
            )
        self.deletes_applied += len(found)
        self._invalidate_statistics()
        return len(found)
