"""Diff a fresh wall-clock benchmark run against the committed baseline.

Usage: python tools/bench_diff.py BASELINE.json CANDIDATE.json

Prints a per-workload comparison and warns — exit code stays 0 — when a
workload regressed by more than ``WARN_RATIO``.  Wall-clock numbers are
machine- and load-dependent, so a regression here is a prompt to look, not
a CI failure.
"""

from __future__ import annotations

import json
import sys

#: warn when candidate seconds exceed baseline seconds by this factor
WARN_RATIO = 1.25


def main(argv: "list[str]") -> int:
    if len(argv) != 3:
        print(__doc__)
        return 2
    try:
        with open(argv[1]) as fh:
            baseline = json.load(fh)["workloads"]
    except FileNotFoundError:
        print(f"no baseline at {argv[1]}; nothing to diff against")
        return 0
    with open(argv[2]) as fh:
        candidate = json.load(fh)["workloads"]

    warned = False
    header = f"{'workload':<14}{'baseline s':>12}{'candidate s':>13}{'ratio':>8}"
    print(header)
    print("-" * len(header))
    for name in sorted(set(baseline) | set(candidate)):
        base = baseline.get(name, {}).get("seconds")
        cand = candidate.get(name, {}).get("seconds")
        if base is None or cand is None:
            print(f"{name:<14}{base or '—':>12}{cand or '—':>13}{'new':>8}")
            continue
        ratio = cand / base if base else float("inf")
        flag = ""
        if ratio > WARN_RATIO:
            flag = "  <-- WARNING: regression"
            warned = True
        print(f"{name:<14}{base:>12.4f}{cand:>13.4f}{ratio:>8.2f}{flag}")
    if warned:
        print(
            f"\nWARNING: at least one workload slowed by >{WARN_RATIO}x vs the"
            " committed baseline.\nIf the machine was otherwise idle, investigate"
            " before merging; refresh the baseline by copying the candidate over"
            " BENCH_read_path.json if the change is intended."
        )
    else:
        print("\nok: no workload regressed past the warning threshold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
