"""Documentation health check (the ``make docs-check`` target).

Two gates:

1. **Docstring coverage** — every public module under ``src/repro`` (and
   every public class/function defined at module top level) must carry a
   docstring.  Names prefixed with ``_`` are exempt.
2. **README executability** — every ``python`` code block in README.md
   must actually run.  Blocks are executed in one shared namespace, in
   order, from the repository root (matching the instructions readers
   follow).

Exits non-zero with a report of every violation.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"
README = REPO_ROOT / "README.md"

_CODE_BLOCK_RE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def check_docstrings() -> list[str]:
    """Modules / top-level defs under src/repro lacking docstrings."""
    problems = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        relative = path.relative_to(REPO_ROOT)
        if any(part.startswith("_") and part != "__init__.py" for part in relative.parts):
            continue
        tree = ast.parse(path.read_text(encoding="utf-8"))
        if ast.get_docstring(tree) is None:
            problems.append(f"{relative}: missing module docstring")
        for node in tree.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if node.name.startswith("_"):
                continue
            if ast.get_docstring(node) is None:
                problems.append(
                    f"{relative}:{node.lineno}: public "
                    f"{'class' if isinstance(node, ast.ClassDef) else 'function'} "
                    f"{node.name!r} missing docstring"
                )
    return problems


def check_readme_blocks() -> list[str]:
    """Run README's python blocks; return failures."""
    problems = []
    if not README.exists():
        return ["README.md not found"]
    blocks = _CODE_BLOCK_RE.findall(README.read_text(encoding="utf-8"))
    if not blocks:
        return ["README.md has no ```python blocks to verify"]
    namespace: dict = {"__name__": "__readme__"}
    sys.path.insert(0, str(SRC_ROOT))
    for index, block in enumerate(blocks, start=1):
        try:
            exec(compile(block, f"README.md#block{index}", "exec"), namespace)
        except Exception as error:  # noqa: BLE001 - report and keep checking
            problems.append(f"README.md python block {index} failed: {error!r}")
    return problems


def main() -> int:
    problems = check_docstrings()
    readme_problems = check_readme_blocks()
    for problem in problems + readme_problems:
        print(f"docs-check: {problem}")
    if problems or readme_problems:
        print(f"docs-check: FAILED ({len(problems) + len(readme_problems)} problems)")
        return 1
    print("docs-check: OK (docstrings complete, README blocks run)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
