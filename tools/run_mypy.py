"""Gated mypy runner for `make lint`.

The container images this repo targets do not all ship mypy, and the
build may not install packages, so the type check is *gated*: when mypy
is importable it runs against ``mypy.ini`` (the strict-allowlist config)
and its exit code is propagated; when it is absent the step is skipped
with exit code 0 and a loud message.  CI's lint job installs mypy, so
the typed core is always enforced where it matters.

Usage: ``python -m tools.run_mypy`` from the repository root.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def main(argv: "list[str] | None" = None) -> int:
    try:
        import mypy  # noqa: F401
    except ImportError:
        print(
            "run_mypy: mypy is not installed in this environment -- "
            "skipping the typed-core check (CI's lint job enforces it)"
        )
        return 0
    command = [
        sys.executable,
        "-m",
        "mypy",
        "--config-file",
        str(REPO_ROOT / "mypy.ini"),
    ] + list(argv or [])
    completed = subprocess.run(command, cwd=REPO_ROOT, check=False)
    return completed.returncode


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
