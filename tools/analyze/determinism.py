"""RL201/RL202/RL203 — determinism of the reproduction's cost paths.

The paper's fig7/8 numbers are *simulated* and must be bit-identical
run-to-run (the repo's bench baselines and bit-identity tests depend on
it).  Three failure modes are outlawed statically:

* **RL201** wall-clock reads (``time.time``/``perf_counter``/…,
  ``datetime.now``) anywhere under ``src/repro`` except the explicit
  :data:`tools.analyze.config.WALLCLOCK_ALLOWLIST` (the serving layer's
  real-latency measurement) and inline-disabled sites;
* **RL202** unseeded randomness: module-level ``random.*`` (a process
  -global RNG shared across threads), zero-argument ``random.Random()``,
  ``os.urandom``, ``uuid.uuid1``/``uuid4``, and anything from ``secrets``.
  Seeded ``random.Random(seed)`` instances are fine — that is how the
  TPC-H generator stays reproducible;
* **RL203** direct iteration over set expressions in the simulated-cost
  directories — set order varies with hashing and insertion history, so
  any set that feeds ordered work must go through ``sorted(...)``.
"""

from __future__ import annotations

import ast

from tools.analyze.base import Finding, ModuleInfo
from tools.analyze.config import WALLCLOCK_ALLOWLIST, in_scope

_WALLCLOCK_FNS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "sleep",
        "localtime",
        "gmtime",
        "ctime",
        "asctime",
    }
)
_DATETIME_FNS = frozenset({"now", "utcnow", "today"})
_RANDOM_MODULE = "random"
_UUID_FNS = frozenset({"uuid1", "uuid4"})


class _Imports(ast.NodeVisitor):
    """Resolves local names back to the modules/functions they came from."""

    def __init__(self) -> None:
        #: local alias -> module name ("time", "random", "os", ...)
        self.modules: "dict[str, str]" = {}
        #: local name -> (module, original function name)
        self.functions: "dict[str, tuple[str, str]]" = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.modules[alias.asname or alias.name] = alias.name

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None:
            return
        for alias in node.names:
            self.functions[alias.asname or alias.name] = (
                node.module,
                alias.name,
            )


def _call_origin(node: ast.Call, imports: _Imports) -> "tuple[str, str] | None":
    """``(module, function)`` of a call through an import, else ``None``."""
    func = node.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        module = imports.modules.get(func.value.id)
        if module is not None:
            return (module, func.attr)
        return None
    if isinstance(func, ast.Name):
        return imports.functions.get(func.id)
    return None


def _is_set_expr(node: ast.expr) -> bool:
    """Whether ``node`` is syntactically a set (literal, comprehension, or
    ``set(...)``/``frozenset(...)`` constructor call)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def check(info: ModuleInfo) -> "list[Finding]":
    """Determinism findings for one module."""
    findings: "list[Finding]" = []
    src_scope = in_scope(info, "src")
    simulated_scope = in_scope(info, "simulated")
    if not src_scope and not simulated_scope:
        return findings
    imports = _Imports()
    imports.visit(info.tree)
    allowlisted = WALLCLOCK_ALLOWLIST.get(info.relpath, frozenset())

    for node in ast.walk(info.tree):
        if src_scope and isinstance(node, ast.Call):
            origin = _call_origin(node, imports)
            if origin is not None:
                module, name = origin
                if module == "time" and name in _WALLCLOCK_FNS:
                    if name not in allowlisted:
                        findings.append(
                            Finding(
                                "RL201",
                                info.relpath,
                                node.lineno,
                                node.col_offset,
                                f"wall-clock call time.{name}() in a "
                                "simulated-cost layer; charge "
                                "metrics.advance_time instead (or add the "
                                "site to the wall-clock allowlist)",
                            )
                        )
                elif module == _RANDOM_MODULE and name == "Random":
                    if not node.args and not node.keywords:
                        findings.append(
                            Finding(
                                "RL202",
                                info.relpath,
                                node.lineno,
                                node.col_offset,
                                "random.Random() without a seed is "
                                "nondeterministic; pass an explicit seed",
                            )
                        )
                elif module == _RANDOM_MODULE:
                    findings.append(
                        Finding(
                            "RL202",
                            info.relpath,
                            node.lineno,
                            node.col_offset,
                            f"module-level random.{name}() uses the "
                            "process-global RNG; use a seeded "
                            "random.Random(seed) instance",
                        )
                    )
                elif module == "os" and name == "urandom":
                    findings.append(
                        Finding(
                            "RL202",
                            info.relpath,
                            node.lineno,
                            node.col_offset,
                            "os.urandom is nondeterministic by definition",
                        )
                    )
                elif module == "uuid" and name in _UUID_FNS:
                    findings.append(
                        Finding(
                            "RL202",
                            info.relpath,
                            node.lineno,
                            node.col_offset,
                            f"uuid.{name}() is nondeterministic; derive "
                            "IDs from deterministic state",
                        )
                    )
                elif module == "secrets":
                    findings.append(
                        Finding(
                            "RL202",
                            info.relpath,
                            node.lineno,
                            node.col_offset,
                            "the secrets module is nondeterministic by "
                            "design",
                        )
                    )
            # datetime.datetime.now() / datetime.now() style wall clocks
            func = node.func
            if (
                src_scope
                and isinstance(func, ast.Attribute)
                and func.attr in _DATETIME_FNS
            ):
                root = func.value
                while isinstance(root, ast.Attribute):
                    root = root.value
                if isinstance(root, ast.Name) and (
                    imports.modules.get(root.id) == "datetime"
                    or imports.functions.get(root.id, ("", ""))[0] == "datetime"
                ):
                    findings.append(
                        Finding(
                            "RL201",
                            info.relpath,
                            node.lineno,
                            node.col_offset,
                            f"wall-clock call datetime …{func.attr}() in a "
                            "simulated-cost layer",
                        )
                    )
        if simulated_scope:
            iters: "list[ast.expr]" = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            elif isinstance(node, ast.Call):
                func = node.func
                wrapper = (
                    func.id
                    if isinstance(func, ast.Name)
                    else func.attr
                    if isinstance(func, ast.Attribute)
                    else None
                )
                if wrapper in ("list", "tuple", "iter", "enumerate", "join"):
                    iters.extend(node.args)
            for candidate in iters:
                if _is_set_expr(candidate):
                    findings.append(
                        Finding(
                            "RL203",
                            info.relpath,
                            candidate.lineno,
                            candidate.col_offset,
                            "iteration over a set has no deterministic "
                            "order; wrap it in sorted(...)",
                        )
                    )
    return findings
