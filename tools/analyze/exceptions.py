"""RL401/RL402/RL403 — exception safety of paired resources.

The PR-4 cascade-cleanup bug class: a resource acquired imperatively
(lock, temp index family, adopted cache entry) leaked when an exception
fired between acquisition and release.  Three rules close it:

* **RL401** — a statement-level ``.acquire*()`` call must be the last
  statement before a ``try:`` whose ``finally`` releases the same object
  (``with`` is better still; the try/finally form exists for context
  managers that must acquire in ``__enter__``-like positions).
* **RL402** — ``.release*()`` may only appear inside a ``finally`` block;
  anywhere else, the path from acquire to release is not exception-proof.
* **RL403** — cleanup calls that discharge a temp-resource obligation
  (``drop_family`` / ``drop_table`` / ``forget``) must run inside a
  ``finally``, or inside a dedicated cleanup helper (a function whose
  name says it is cleanup: ``_cleanup*``, ``forget``, ``drop*``,
  ``close*``, ``teardown*``) that callers invoke from their ``finally``.

Methods *named* ``acquire*``/``release*``/``__enter__``/``__exit__`` are
exempt from RL401/RL402 — they are the wrapper implementations the rest
of the code is being pushed toward.
"""

from __future__ import annotations

import ast

from tools.analyze.base import Finding, ModuleInfo
from tools.analyze.config import CLEANUP_CALLS, CLEANUP_FUNCTION_PREFIXES, in_scope

_WRAPPER_METHODS = ("acquire", "release", "__enter__", "__exit__")


def _call_attr(statement: ast.stmt) -> "tuple[ast.Call, str] | None":
    """``(call, attribute name)`` of a bare expression-statement method
    call, else ``None``."""
    if not isinstance(statement, ast.Expr):
        return None
    call = statement.value
    if isinstance(call, ast.Call) and isinstance(call.func, ast.Attribute):
        return call, call.func.attr
    return None


def _receiver_key(call: ast.Call) -> str:
    """A structural key of the call's receiver, for matching
    ``x.y.acquire()`` with ``x.y.release()``."""
    assert isinstance(call.func, ast.Attribute)
    return ast.dump(call.func.value)


def _finally_releases(finalbody: "list[ast.stmt]", receiver: str) -> bool:
    """Whether the finally block (recursively) calls ``.release*()`` on
    the same receiver."""
    for statement in finalbody:
        for node in ast.walk(statement):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr.startswith("release")
                and ast.dump(node.func.value) == receiver
            ):
                return True
    return False


class _FunctionChecker:
    """Checks one function body, tracking finally-nesting."""

    def __init__(self, info: ModuleInfo, function_name: str) -> None:
        self.info = info
        self.function_name = function_name
        self.findings: "list[Finding]" = []
        self._is_wrapper = function_name.startswith(_WRAPPER_METHODS)
        self._is_cleanup = function_name.startswith(CLEANUP_FUNCTION_PREFIXES)

    def check_block(self, body: "list[ast.stmt]", in_finally: bool) -> None:
        for index, statement in enumerate(body):
            matched = _call_attr(statement)
            if matched is not None:
                call, attr = matched
                if attr.startswith("acquire") and not self._is_wrapper:
                    follower = body[index + 1] if index + 1 < len(body) else None
                    safe = (
                        isinstance(follower, ast.Try)
                        and _finally_releases(
                            follower.finalbody, _receiver_key(call)
                        )
                    )
                    if not safe:
                        self.findings.append(
                            Finding(
                                "RL401",
                                self.info.relpath,
                                call.lineno,
                                call.col_offset,
                                f"bare .{attr}() without an immediate "
                                "try/finally release; use `with`, or "
                                "follow the acquire with try: ... "
                                "finally: ...release...()",
                            )
                        )
                elif (
                    attr.startswith("release")
                    and not self._is_wrapper
                    and not in_finally
                ):
                    self.findings.append(
                        Finding(
                            "RL402",
                            self.info.relpath,
                            call.lineno,
                            call.col_offset,
                            f".{attr}() outside a finally block is not "
                            "exception-safe",
                        )
                    )
                elif (
                    attr in CLEANUP_CALLS
                    and not in_finally
                    and not self._is_cleanup
                ):
                    self.findings.append(
                        Finding(
                            "RL403",
                            self.info.relpath,
                            call.lineno,
                            call.col_offset,
                            f".{attr}() discharges a temp-resource "
                            "obligation; run it in a finally block or a "
                            "dedicated cleanup helper so failures cannot "
                            "leak the resource",
                        )
                    )
            self._descend(statement, in_finally)

    def _descend(self, statement: ast.stmt, in_finally: bool) -> None:
        if isinstance(statement, ast.Try):
            self.check_block(statement.body, in_finally)
            for handler in statement.handlers:
                self.check_block(handler.body, in_finally)
            self.check_block(statement.orelse, in_finally)
            self.check_block(statement.finalbody, True)
            return
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # nested functions are reached by the module-level ast.walk in
            # check() and analyzed under their own name there
            return
        for field in ("body", "orelse", "finalbody"):
            block = getattr(statement, field, None)
            if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
                self.check_block(block, in_finally)


def check(info: ModuleInfo) -> "list[Finding]":
    """Exception-safety findings for one module.

    RL401/RL402 apply everywhere under ``src/repro`` (a leaked lock is a
    hang no matter the layer); RL403 applies to metered paths, where temp
    families and adopted index state live.
    """
    findings: "list[Finding]" = []
    src_scope = in_scope(info, "src")
    metered_scope = in_scope(info, "metered")
    if not src_scope and not metered_scope:
        return findings
    for node in ast.walk(info.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            checker = _FunctionChecker(info, node.name)
            checker.check_block(node.body, in_finally=False)
            for finding in checker.findings:
                if finding.rule_id == "RL403" and not metered_scope:
                    continue
                findings.append(finding)
    return findings
