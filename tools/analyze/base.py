"""Shared infrastructure of the repro-lint checkers.

A checker consumes a :class:`ModuleInfo` (parsed AST + per-line comments +
scope tags) and yields :class:`Finding` objects.  Suppression is handled
here, uniformly for every rule:

* ``# lint: disable=RL301 (reason)`` on the finding's line suppresses it.
  The reason string is **mandatory** — a disable without one raises
  ``RL001`` so silenced findings stay documented at the silencing site.
* ``# guarded-by: _lock`` / ``# guarded-by: _lock (writes)`` declares a
  guarded attribute (consumed by the lock-discipline checker).
* ``# lint: holds-lock(_lock)`` on a ``def`` line declares the function is
  only called with ``_lock`` already held (a locked-helper convention).
* ``# lint: scope=simulated,metered`` anywhere in a file forces scope
  membership — used by the fixture corpus, which lives outside ``src/``.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path

from tools.analyze.rules import RULES, is_known

_DISABLE_RE = re.compile(
    r"lint:\s*disable=(?P<rules>RL\d{3}(?:\s*,\s*RL\d{3})*)"
    r"(?:\s*\((?P<reason>[^)]*)\))?"
)
_GUARDED_RE = re.compile(
    r"guarded-by:\s*(?P<lock>[A-Za-z_][A-Za-z0-9_]*)"
    r"(?:\s*\((?P<mode>writes)\))?"
)
_HOLDS_RE = re.compile(r"lint:\s*holds-lock\((?P<lock>[A-Za-z_][A-Za-z0-9_]*)\)")
_SCOPE_RE = re.compile(r"lint:\s*scope=(?P<scopes>[a-z]+(?:\s*,\s*[a-z]+)*)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        """``path:line:col: RLxxx (name) message`` — the text output row."""
        name = RULES[self.rule_id].name if is_known(self.rule_id) else "?"
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} ({name}) {self.message}"
        )

    def as_json(self) -> "dict[str, object]":
        """The ``--json`` representation (one object per finding)."""
        return {
            "rule": self.rule_id,
            "name": RULES[self.rule_id].name if is_known(self.rule_id) else None,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass(frozen=True)
class GuardDecl:
    """A ``guarded-by`` declaration: which lock, and whether only writes
    are required to hold it (lock-free snapshot-read designs)."""

    lock: str
    writes_only: bool = False


class ModuleInfo:
    """A parsed source file plus the comment-borne lint metadata."""

    def __init__(self, path: Path, relpath: str, source: str) -> None:
        self.path = path
        self.relpath = relpath
        self.source = source
        self.tree = ast.parse(source, filename=str(path))
        #: line number -> full comment text on that line
        self.comments: "dict[int, str]" = {}
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                self.comments[token.start[0]] = token.string
        #: scopes forced by `# lint: scope=` pragmas (fixture corpus)
        self.forced_scopes: "set[str]" = set()
        #: line -> list of (rule_id, reason-or-None) disable pragmas
        self.disables: "dict[int, list[tuple[str, str | None]]]" = {}
        #: line -> lock name from a holds-lock pragma
        self.holds_lock: "dict[int, str]" = {}
        #: line -> guarded-by declaration
        self.guard_decls: "dict[int, GuardDecl]" = {}
        for line, text in self.comments.items():
            match = _SCOPE_RE.search(text)
            if match:
                self.forced_scopes.update(
                    part.strip() for part in match.group("scopes").split(",")
                )
            match = _DISABLE_RE.search(text)
            if match:
                reason = match.group("reason")
                reason = reason.strip() if reason else None
                entries = self.disables.setdefault(line, [])
                for rule_id in re.split(r"\s*,\s*", match.group("rules")):
                    entries.append((rule_id, reason or None))
            match = _HOLDS_RE.search(text)
            if match:
                self.holds_lock[line] = match.group("lock")
            match = _GUARDED_RE.search(text)
            if match:
                self.guard_decls[line] = GuardDecl(
                    lock=match.group("lock"),
                    writes_only=match.group("mode") == "writes",
                )

    def disabled_rules(self, line: int) -> "set[str]":
        """Rule IDs silenced (with a reason) on ``line``."""
        return {
            rule_id
            for rule_id, reason in self.disables.get(line, ())
            if reason is not None
        }

    def pragma_findings(self) -> "list[Finding]":
        """RL001/RL002: disables missing reasons or naming unknown rules."""
        findings = []
        for line, entries in sorted(self.disables.items()):
            for rule_id, reason in entries:
                if reason is None:
                    findings.append(
                        Finding(
                            "RL001",
                            self.relpath,
                            line,
                            0,
                            f"disable pragma for {rule_id} has no reason; "
                            f"write `# lint: disable={rule_id} (why this "
                            "is a false positive)`",
                        )
                    )
                if not is_known(rule_id):
                    findings.append(
                        Finding(
                            "RL002",
                            self.relpath,
                            line,
                            0,
                            f"disable pragma names unknown rule {rule_id}",
                        )
                    )
        return findings


def load_module(path: Path, repo_root: Path) -> ModuleInfo:
    """Parse ``path`` into a :class:`ModuleInfo` (relpath is repo-relative
    POSIX when under the root, else the path as given)."""
    try:
        relpath = path.resolve().relative_to(repo_root.resolve()).as_posix()
    except ValueError:
        relpath = path.as_posix()
    return ModuleInfo(path, relpath, path.read_text(encoding="utf-8"))


def self_attr(node: ast.expr) -> "str | None":
    """The ``X`` of a ``self.X`` attribute expression, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def self_attr_root(node: ast.expr) -> "str | None":
    """The first attribute of a ``self.X...`` chain (``self.X``,
    ``self.X.y``, ``self.X.y(...)``, ``self.X(...)``), else ``None``."""
    while True:
        if isinstance(node, ast.Call):
            node = node.func
            continue
        attr = self_attr(node)
        if attr is not None:
            return attr
        if isinstance(node, ast.Attribute):
            node = node.value
            continue
        return None
