"""RL101/RL102 — lock discipline over declared guarded attributes.

A class declares its concurrency contract either with inline
``# guarded-by: <lock>`` comments on the attribute's ``__init__``
assignment, or through :data:`tools.analyze.config.GUARDED_REGISTRY`.
Within that class, every ``self.<attr>`` access must then be lexically
inside a ``with self.<lock>`` (or ``with self.<lock>.<anything>()``)
block.  Helper methods that are only called with the lock held are marked
``# lint: holds-lock(<lock>)`` on their ``def`` line.

``writes`` mode (``# guarded-by: _lock (writes)``) relaxes reads: classes
built on rebind-snapshot / copy-on-write structures serve lock-free reads
by design, so only mutations (assignments, augmented assignments,
subscript stores, and structural mutator calls like ``.append``) must
hold the lock.

``__init__`` and ``__new__`` are exempt — construction happens-before
publication.  Nested functions and lambdas are analyzed with an empty
held-lock set: they may run after the enclosing block released the lock.
"""

from __future__ import annotations

import ast

from tools.analyze.base import Finding, GuardDecl, ModuleInfo, self_attr, self_attr_root
from tools.analyze.config import GUARDED_REGISTRY, MUTATOR_METHODS

_EXEMPT_METHODS = frozenset({"__init__", "__new__"})


def _collect_decls(
    info: ModuleInfo, node: ast.ClassDef, registry: "dict[str, dict[str, GuardDecl]]"
) -> "dict[str, GuardDecl]":
    """Guarded-attribute declarations of one class (comments + registry)."""
    decls: "dict[str, GuardDecl]" = {}
    registry_key = f"{info.relpath}:{node.name}"
    decls.update(registry.get(registry_key, {}))
    for statement in ast.walk(node):
        if not isinstance(statement, (ast.Assign, ast.AnnAssign)):
            continue
        decl = info.guard_decls.get(statement.lineno)
        if decl is None:
            continue
        targets = (
            statement.targets
            if isinstance(statement, ast.Assign)
            else [statement.target]
        )
        for target in targets:
            attr = self_attr(target)
            if attr is not None:
                decls[attr] = decl
    return decls


class _MethodChecker:
    """Walks one method body tracking which declared locks are held."""

    def __init__(
        self,
        info: ModuleInfo,
        decls: "dict[str, GuardDecl]",
        held: "frozenset[str]",
    ) -> None:
        self.info = info
        self.decls = decls
        self.held = set(held)
        self.findings: "list[Finding]" = []

    # -- violation reporting --------------------------------------------------

    def _report(self, node: ast.expr, attr: str, write: bool) -> None:
        decl = self.decls[attr]
        if decl.lock in self.held:
            return
        if decl.writes_only and not write:
            return
        rule = "RL102" if write else "RL101"
        action = "written" if write else "read"
        self.findings.append(
            Finding(
                rule,
                self.info.relpath,
                node.lineno,
                node.col_offset,
                f"self.{attr} is guarded by self.{decl.lock} but {action} "
                f"outside `with self.{decl.lock}`",
            )
        )

    # -- expression traversal -------------------------------------------------

    def _visit_expr(self, node: "ast.AST | None", write: bool = False) -> None:
        if node is None:
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # a nested callable may outlive the lock scope: analyze its
            # body with nothing held
            inner = _MethodChecker(self.info, self.decls, frozenset())
            body = node.body if isinstance(node.body, list) else [node.body]
            for statement in body:
                inner._visit_expr(statement)
            self.findings.extend(inner.findings)
            return
        if isinstance(node, ast.Attribute):
            attr = self_attr(node)
            if attr is not None and attr in self.decls:
                self._report(node, attr, write or isinstance(node.ctx, ast.Del))
            self._visit_expr(node.value)
            return
        if isinstance(node, ast.Subscript):
            # self.X[k] = v / del self.X[k]: a write to the container X
            self._visit_expr(node.value, write=write)
            self._visit_expr(node.slice)
            return
        if isinstance(node, ast.Call):
            # self.X.append(...) and friends mutate X structurally
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in MUTATOR_METHODS
            ):
                attr = self_attr(func.value)
                if attr is not None and attr in self.decls:
                    self._report(func.value, attr, write=True)
                    for arg in [*node.args, *node.keywords]:
                        self._visit_expr(arg)
                    return
            for child in ast.iter_child_nodes(node):
                self._visit_expr(child)
            return
        if isinstance(node, ast.With):
            self._visit_with(node)
            return
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                self._visit_expr(target, write=True)
            self._visit_expr(node.value)
            if isinstance(node, ast.AugAssign):
                # `self.X += 1` both reads and writes X; the write report
                # covers it (RL102 subsumes the read)
                pass
            return
        if isinstance(node, ast.Delete):
            for target in node.targets:
                self._visit_expr(target, write=True)
            return
        for child in ast.iter_child_nodes(node):
            self._visit_expr(child)

    def _visit_with(self, node: ast.With) -> None:
        acquired: "list[str]" = []
        for item in node.items:
            root = self_attr_root(item.context_expr)
            if root is not None and root in self._lock_names():
                if root not in self.held:
                    self.held.add(root)
                    acquired.append(root)
            self._visit_expr(item.context_expr)
        for statement in node.body:
            self._visit_expr(statement)
        for root in acquired:
            self.held.discard(root)

    def _lock_names(self) -> "set[str]":
        return {decl.lock for decl in self.decls.values()}


def check(info: ModuleInfo, registry: "dict[str, dict[str, GuardDecl]] | None" = None) -> "list[Finding]":
    """Lock-discipline findings for one module."""
    merged_registry = GUARDED_REGISTRY if registry is None else registry
    findings: "list[Finding]" = []
    for node in ast.walk(info.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        decls = _collect_decls(info, node, merged_registry)
        if not decls:
            continue
        for method in node.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name in _EXEMPT_METHODS:
                continue
            held: "set[str]" = set()
            pragma_lock = info.holds_lock.get(method.lineno)
            if pragma_lock is not None:
                held.add(pragma_lock)
            checker = _MethodChecker(info, decls, frozenset(held))
            for statement in method.body:
                checker._visit_expr(statement)
            findings.extend(checker.findings)
    return findings
