"""Discovery, orchestration, suppression, and output of repro-lint.

Programmatic entry points (used by ``tests/lint``):

* :func:`analyze_paths` — lint files/directories, returning findings
  after pragma suppression;
* :func:`analyze_module` — lint one pre-loaded :class:`ModuleInfo`.

``main`` implements the CLI (see ``python -m tools.analyze --help``).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

from tools.analyze import determinism, exceptions, locks, metering
from tools.analyze.base import Finding, GuardDecl, ModuleInfo, load_module
from tools.analyze.rules import RULES

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def analyze_module(
    info: ModuleInfo,
    registry: "dict[str, dict[str, GuardDecl]] | None" = None,
) -> "list[Finding]":
    """All findings for one module, after inline-pragma suppression."""
    raw: "list[Finding]" = list(info.pragma_findings())
    raw.extend(locks.check(info, registry=registry))
    raw.extend(determinism.check(info))
    raw.extend(metering.check(info))
    raw.extend(exceptions.check(info))
    kept = [
        finding
        for finding in raw
        if finding.rule_id in ("RL001", "RL002")
        or finding.rule_id not in info.disabled_rules(finding.line)
    ]
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return kept


def discover(paths: "list[Path]") -> "list[Path]":
    """The .py files named by ``paths`` (directories recurse, sorted)."""
    files: "list[Path]" = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


def analyze_paths(
    paths: "list[Path]",
    registry: "dict[str, dict[str, GuardDecl]] | None" = None,
) -> "list[Finding]":
    """Lint every file under ``paths``; findings sorted by location."""
    findings: "list[Finding]" = []
    for file in discover(paths):
        info = load_module(file, REPO_ROOT)
        findings.extend(analyze_module(info, registry=registry))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings


def changed_files(roots: "list[Path]") -> "list[Path]":
    """Python files under ``roots`` that differ from HEAD (staged,
    unstaged, or untracked) — the ``--changed`` fast path."""
    names: "set[str]" = set()
    for args in (
        ["git", "diff", "--name-only", "HEAD"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        result = subprocess.run(
            args, cwd=REPO_ROOT, capture_output=True, text=True, check=False
        )
        names.update(line.strip() for line in result.stdout.splitlines() if line.strip())
    resolved_roots = [root.resolve() for root in roots]
    selected: "list[Path]" = []
    for name in sorted(names):
        if not name.endswith(".py"):
            continue
        path = (REPO_ROOT / name).resolve()
        if not path.exists():
            continue
        if any(root == path or root in path.parents for root in resolved_roots):
            selected.append(path)
    return selected


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Invariant-enforcing static analysis for this repo: "
        "lock discipline, determinism, metering, exception safety.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit findings as a JSON array (CI annotation format)",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help="lint only files in the working diff vs HEAD (fast local runs)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES.values():
            print(f"{rule.rule_id}  {rule.name:24s} {rule.summary}")
        return 0

    roots = [
        path if path.is_absolute() else REPO_ROOT / path
        for path in map(Path, args.paths)
    ]
    if args.changed:
        files: "list[Path]" = changed_files(roots)
        if not files:
            if not args.json:
                print("repro-lint: no changed python files in scope")
            else:
                print("[]")
            return 0
        findings = analyze_paths(files)
    else:
        findings = analyze_paths(roots)

    if args.json:
        print(json.dumps([finding.as_json() for finding in findings], indent=2))
    else:
        for finding in findings:
            print(finding.render())
        checked = len(discover(files if args.changed else roots))
        status = "clean" if not findings else f"{len(findings)} finding(s)"
        print(f"repro-lint: {checked} file(s) checked, {status}")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
