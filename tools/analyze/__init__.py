"""repro-lint: the repo's invariant-enforcing static-analysis suite.

Four AST-based checker families guard the invariants the test suite can
only probabilistically exercise:

* **lock discipline** (RL1xx) — attributes declared ``# guarded-by:`` may
  only be touched under their lock;
* **determinism** (RL2xx) — no wall-clock, unseeded randomness, or
  set-iteration-order dependence in simulated-cost paths;
* **metering** (RL3xx) — no raw store access or out-of-API metric
  mutation in metered paths (the fig7/8 bit-identity guarantee);
* **exception safety** (RL4xx) — locks and temp index families release
  via ``with``/``try-finally``.

Run ``python -m tools.analyze`` from the repository root (or ``make
lint``, which also runs mypy on the strict allowlist and the docs check).
"""

from tools.analyze.base import Finding, GuardDecl, ModuleInfo, load_module
from tools.analyze.rules import RULES, Rule
from tools.analyze.runner import analyze_module, analyze_paths, main

__all__ = [
    "Finding",
    "GuardDecl",
    "ModuleInfo",
    "RULES",
    "Rule",
    "analyze_module",
    "analyze_paths",
    "load_module",
    "main",
]
