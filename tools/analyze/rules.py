"""The repro-lint rule catalog.

Rule IDs are **stable**: tests, inline ``# lint: disable=`` pragmas, and CI
annotations all key on them, so an ID is never renumbered or reused once
released.  New rules take the next free number in their family:

* ``RL0xx`` — pragma / annotation hygiene (the lint of the lint),
* ``RL1xx`` — lock discipline (guarded shared state),
* ``RL2xx`` — determinism of simulated-cost paths,
* ``RL3xx`` — cost-metering integrity (the fig7/8 bit-identity guarantee),
* ``RL4xx`` — exception safety of paired resources (locks, temp families).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Rule:
    """One stable lint rule: its ID, a short name, and what it protects."""

    rule_id: str
    name: str
    summary: str


_CATALOG: "tuple[Rule, ...]" = (
    Rule(
        "RL001",
        "pragma-needs-reason",
        "a `# lint: disable=<rule>` pragma must carry a parenthesized "
        "reason string explaining why the finding is a false positive",
    ),
    Rule(
        "RL002",
        "pragma-unknown-rule",
        "a `# lint: disable=` pragma names a rule ID that is not in the "
        "catalog (typo, or a rule that was never released)",
    ),
    Rule(
        "RL101",
        "unguarded-read",
        "an attribute declared `# guarded-by: <lock>` is read outside a "
        "`with self.<lock>` block (torn reads under concurrent mutation)",
    ),
    Rule(
        "RL102",
        "unguarded-write",
        "an attribute declared `# guarded-by: <lock>` is written or "
        "structurally mutated outside a `with self.<lock>` block",
    ),
    Rule(
        "RL201",
        "wall-clock",
        "wall-clock time (time.time/perf_counter/monotonic/sleep, "
        "datetime.now) inside the simulated-cost layers; simulated costs "
        "must be pure functions of store state and the query",
    ),
    Rule(
        "RL202",
        "nondeterministic-random",
        "unseeded randomness (module-level random.*, zero-arg "
        "random.Random(), os.urandom, uuid1/uuid4, secrets) in code whose "
        "outputs must be reproducible run-to-run",
    ),
    Rule(
        "RL203",
        "set-iteration-order",
        "direct iteration over a set expression; set order varies with "
        "insertion history and hashing, so iterate sorted(...) instead",
    ),
    Rule(
        "RL301",
        "unmetered-store-access",
        "raw store access (all_rows/read_row/raw_cell_count, iterating "
        ".regions) bypassing the metered HTable/Scan wrappers inside a "
        "metered execution path",
    ),
    Rule(
        "RL302",
        "metric-mutation",
        "direct mutation of a MetricsCollector field (sim_time_s, "
        "network_bytes, kv_reads, disk_bytes_read, counters[...]) outside "
        "the collector's own API",
    ),
    Rule(
        "RL401",
        "bare-acquire",
        "a bare .acquire*() call not immediately followed by `try:` with "
        "the matching .release*() in its `finally` — use `with` or "
        "try/finally so an exception cannot leak the lock",
    ),
    Rule(
        "RL402",
        "release-outside-finally",
        "a .release*() call outside any `finally` block — an exception "
        "between acquire and release would leak the lock",
    ),
    Rule(
        "RL403",
        "leaky-cleanup",
        "a cleanup call (drop_family/drop_table/forget) outside a "
        "`finally` block and outside a dedicated cleanup helper — temp "
        "index families must be released even when execution raises",
    ),
)

RULES: "dict[str, Rule]" = {rule.rule_id: rule for rule in _CATALOG}


def is_known(rule_id: str) -> bool:
    """Whether ``rule_id`` is in the released catalog."""
    return rule_id in RULES
