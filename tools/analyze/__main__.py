"""``python -m tools.analyze`` — the repro-lint CLI."""

import sys

from tools.analyze.runner import main

sys.exit(main())
