"""Repo-specific configuration of repro-lint: scopes, allowlists, registry.

Extending an allowlist is a reviewed change to this file — the point is
that every exemption is explicit, named, and greppable, instead of a norm
carried in reviewers' heads.
"""

from __future__ import annotations

from tools.analyze.base import GuardDecl, ModuleInfo

#: directories (repo-relative prefixes) whose code computes or influences
#: the paper's fig7/8 **simulated** metrics.  Set-iteration-order hazards
#: are outlawed here (RL203); the wall-clock and randomness rules
#: (RL201/RL202) apply to *all* of src/repro because nondeterminism
#: anywhere can leak into logs, caches, and test expectations.
SIMULATED_PREFIXES = (
    "src/repro/core/",
    "src/repro/store/",
    "src/repro/mapreduce/",
    "src/repro/query/",
    "src/repro/sketches/",
    "src/repro/cluster/",
    "src/repro/baselines/",
    "src/repro/relational/",
    "src/repro/common/",
)

#: directories whose code executes queries or maintenance under the cost
#: meter: raw (unmetered) store access here must be explicitly justified
#: with an inline ``# lint: disable=RL301 (reason)`` (RL301), and metric
#: fields may only move through collector APIs (RL302).
METERED_PREFIXES = (
    "src/repro/core/",
    "src/repro/baselines/",
    "src/repro/relational/",
    "src/repro/mapreduce/",
    "src/repro/query/",
    "src/repro/maintenance/",
    "src/repro/serving/",
    "src/repro/tpch/",
)

#: modules allowed to touch MetricsCollector fields directly: the
#: collector itself and the thread-local router that impersonates it.
METRIC_API_MODULES = (
    "src/repro/cluster/metrics.py",
    "src/repro/serving/metrics.py",
)

#: the explicit wall-clock allowlist: file -> callable names permitted.
#: The serving layer measures *real* latency percentiles — wall-clock is
#: its job — but only through these two clocks; everything else in the
#: file (and everywhere else) stays simulated.
WALLCLOCK_ALLOWLIST: "dict[str, frozenset[str]]" = {
    "src/repro/serving/server.py": frozenset({"perf_counter", "monotonic"}),
}

#: in-code guarded-attribute registry: ``"<repo-relative path>:<Class>"``
#: -> attribute -> declaration.  Equivalent to `# guarded-by:` comments;
#: used where a class's guard policy is easier to state in one place.
#: ``writes`` mode means reads are lock-free by design (copy-on-write /
#: rebind-snapshot structures) and only mutations must hold the lock.
GUARDED_REGISTRY: "dict[str, dict[str, GuardDecl]]" = {
    # splits/schema changes rebind under _lock; routing reads are
    # deliberately lock-free against rebound snapshots
    "src/repro/store/table.py:StoreTable": {
        "families": GuardDecl("_lock", writes_only=True),
        "regions": GuardDecl("_lock", writes_only=True),
        "_start_keys": GuardDecl("_lock", writes_only=True),
    },
    # every structural transition rebinds the cell list under _lock; open
    # iterators keep reading their captured snapshot
    "src/repro/store/memtable.py:MemTable": {
        "_cells": GuardDecl("_lock", writes_only=True),
        "_by_row": GuardDecl("_lock", writes_only=True),
        "_sorted": GuardDecl("_lock", writes_only=True),
        "byte_size": GuardDecl("_lock", writes_only=True),
    },
    # the process-wide scatter pool lazily creates / tears down its
    # ThreadPoolExecutor under _lock (reads included: a torn-down pool
    # must never hand out a dead executor)
    "src/repro/cluster/executor.py:ScatterPool": {
        "_executor": GuardDecl("_lock"),
        "_pid": GuardDecl("_lock"),
    },
    # the process-pool counterpart: executor handle, pinned size, and the
    # creating PID (the fork-safety witness) all move together under _lock
    "src/repro/cluster/procpool.py:ProcessScatterPool": {
        "_executor": GuardDecl("_lock"),
        "_max_workers": GuardDecl("_lock"),
        "_pid": GuardDecl("_lock"),
    },
}

#: method names that structurally mutate a container attribute (used by
#: the lock checker to catch `self._cells.append(...)` style writes)
MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "clear",
        "pop",
        "popitem",
        "remove",
        "discard",
        "setdefault",
        "move_to_end",
        "sort",
        "reverse",
        "appendleft",
        "popleft",
    }
)

#: StoreTable/Region accessors that read data without charging the meter
UNMETERED_ACCESSORS = frozenset({"all_rows", "read_row", "raw_cell_count"})

#: MetricsCollector fields that may only move through collector APIs
METRIC_FIELDS = frozenset(
    {"sim_time_s", "network_bytes", "kv_reads", "disk_bytes_read"}
)

#: receiver names that identify a metrics collector in RL302 (static
#: approximation: collectors travel as `metrics`, `collector`, or an
#: attribute chain ending `.metrics`)
METRIC_RECEIVER_NAMES = frozenset({"metrics", "collector"})

#: function names whose body IS cleanup — RL403 does not require their
#: internal drop/forget calls to sit inside yet another finally
CLEANUP_FUNCTION_PREFIXES = ("cleanup", "_cleanup", "forget", "drop", "close", "teardown")

#: calls that discharge a temp-resource obligation (RL403 scope)
CLEANUP_CALLS = frozenset({"drop_family", "drop_table", "forget"})


def in_scope(info: ModuleInfo, scope: str) -> bool:
    """Whether a module belongs to ``scope`` (``src`` / ``simulated`` /
    ``metered``), either by location or by a forced fixture pragma."""
    if scope in info.forced_scopes:
        return True
    rel = info.relpath
    if scope == "src":
        return rel.startswith("src/repro/")
    if scope == "simulated":
        return rel.startswith(SIMULATED_PREFIXES)
    if scope == "metered":
        return rel.startswith(METERED_PREFIXES)
    raise ValueError(f"unknown scope {scope!r}")
