"""RL301/RL302 — cost-metering integrity.

The fig7/8 bit-identity guarantee holds because every store access in an
execution path goes through the metered ``HTable`` operations (Get / Scan
/ Put / Delete charge RPCs, bytes, and KV read units) and every metric
moves through a :class:`~repro.cluster.metrics.MetricsCollector` API.
This checker turns that norm into findings:

* **RL301** — calls to the unmetered ``StoreTable``/``Region`` accessors
  (``all_rows``, ``read_row``, ``raw_cell_count``) or iteration over a
  ``.regions`` attribute inside a metered path.  Unmetered access *is*
  legitimate in specific places — statistics gathering, index-existence
  probes, ground-truth computation — and each such site documents itself
  with ``# lint: disable=RL301 (reason)``;
* **RL302** — direct writes to collector fields (``sim_time_s``,
  ``network_bytes``, ``kv_reads``, ``disk_bytes_read``) or to
  ``…counters[...]`` on a metrics receiver, outside the collector module
  itself.  Going through ``advance_time``/``bump``/``record_peak``/…
  keeps invariants (non-negative time) and snapshot deltas exact.
"""

from __future__ import annotations

import ast

from tools.analyze.base import Finding, ModuleInfo
from tools.analyze.config import (
    METRIC_API_MODULES,
    METRIC_FIELDS,
    METRIC_RECEIVER_NAMES,
    UNMETERED_ACCESSORS,
    in_scope,
)


def _is_metrics_receiver(node: ast.expr) -> bool:
    """Whether an expression plausibly evaluates to a MetricsCollector
    (a name like ``metrics``/``collector`` or a chain ending ``.metrics``)."""
    if isinstance(node, ast.Name):
        return node.id.lstrip("_") in METRIC_RECEIVER_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr.lstrip("_") in METRIC_RECEIVER_NAMES
    return False


def _metric_mutation(node: ast.expr) -> "ast.expr | None":
    """If ``node`` (an assignment target) mutates a collector field,
    return the offending expression, else ``None``."""
    # metrics.sim_time_s = ... / metrics.kv_reads += ...
    if isinstance(node, ast.Attribute) and node.attr in METRIC_FIELDS:
        if _is_metrics_receiver(node.value):
            return node
    # metrics.counters[...] = ...
    if isinstance(node, ast.Subscript):
        value = node.value
        if (
            isinstance(value, ast.Attribute)
            and value.attr == "counters"
            and _is_metrics_receiver(value.value)
        ):
            return node
    return None


def check(info: ModuleInfo) -> "list[Finding]":
    """Metering-integrity findings for one module."""
    findings: "list[Finding]" = []
    if not in_scope(info, "metered"):
        return findings
    metric_api = info.relpath in METRIC_API_MODULES

    for node in ast.walk(info.tree):
        # RL301: unmetered accessor calls
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in UNMETERED_ACCESSORS:
                findings.append(
                    Finding(
                        "RL301",
                        info.relpath,
                        node.lineno,
                        node.col_offset,
                        f".{node.func.attr}() reads the store without "
                        "charging the meter; use the HTable API, or "
                        "document why this site is unmetered by design",
                    )
                )
        # RL301: iterating the raw region list
        iters: "list[ast.expr]" = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            iters.extend(gen.iter for gen in node.generators)
        for candidate in iters:
            if isinstance(candidate, ast.Attribute) and candidate.attr == "regions":
                findings.append(
                    Finding(
                        "RL301",
                        info.relpath,
                        candidate.lineno,
                        candidate.col_offset,
                        "iterating .regions bypasses metered routing; "
                        "use Scan/regions_in_range, or document why this "
                        "site is unmetered by design",
                    )
                )
        # RL302: direct collector-field mutation
        if not metric_api and isinstance(
            node, (ast.Assign, ast.AugAssign, ast.AnnAssign)
        ):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                offending = _metric_mutation(target)
                if offending is not None:
                    findings.append(
                        Finding(
                            "RL302",
                            info.relpath,
                            offending.lineno,
                            offending.col_offset,
                            "metric fields move only through collector "
                            "APIs (advance_time / add_network / "
                            "add_kv_reads / bump / record_peak / "
                            "set_counter); direct mutation breaks "
                            "snapshot-delta exactness",
                        )
                    )
        if not metric_api and isinstance(node, ast.Delete):
            for target in node.targets:
                offending = _metric_mutation(target)
                if offending is not None:
                    findings.append(
                        Finding(
                            "RL302",
                            info.relpath,
                            offending.lineno,
                            offending.col_offset,
                            "deleting a collector counter outside the "
                            "collector API",
                        )
                    )
    return findings
