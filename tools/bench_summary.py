"""Aggregate every committed ``BENCH_*.json`` into one trajectory table.

Usage: python tools/bench_summary.py [DIR]

Perf history lives in one baseline file per bench suite (read path,
sketch, serving, ingest, multi-way, planner accuracy, scatter/gather).
This tool flattens them all into a single greppable table — one line per
``suite/workload`` with its headline number — plus each suite's meta
headline facts, so "what did X cost at this commit" is one grep away:

    python tools/bench_summary.py | grep serving

Reads only committed baselines (``*.candidate.json`` intermediates are
skipped); exit code is 2 when no baseline files are found, 0 otherwise.
"""

from __future__ import annotations

import glob
import json
import os
import sys

#: meta keys worth a summary line of their own (headline derived metrics)
META_HIGHLIGHTS = (
    "speedup",
    "qps",
    "hit_rate",
    "blob_speedup_vs_seed",
    "coder_speedup_vs_seed",
    "result_mismatches",
)


def _suite_name(path: str) -> str:
    base = os.path.basename(path)
    return base[len("BENCH_"):-len(".json")]


def _flatten_meta(meta: dict, prefix: str = "") -> "list[tuple[str, float]]":
    rows = []
    for key, value in sorted(meta.items()):
        if isinstance(value, dict):
            rows.extend(_flatten_meta(value, prefix=f"{prefix}{key}."))
        elif f"{prefix}{key}".split(".")[-1] in META_HIGHLIGHTS and isinstance(
            value, (int, float)
        ):
            rows.append((f"{prefix}{key}", float(value)))
    return rows


def summarize(directory: str) -> "list[str]":
    """The trajectory table as a list of printable lines."""
    paths = sorted(
        path
        for path in glob.glob(os.path.join(directory, "BENCH_*.json"))
        if not path.endswith(".candidate.json")
    )
    if not paths:
        return []
    lines = []
    header = (
        f"{'suite':<10} {'workload':<28} {'seconds':>12} {'extra':<24}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for path in paths:
        suite = _suite_name(path)
        with open(path) as fh:
            data = json.load(fh)
        for name, cell in sorted(data.get("workloads", {}).items()):
            seconds = cell.get("seconds")
            extras = []
            for key in ("ops", "per_op_us", "kv_reads", "network_bytes",
                        "chosen", "fastest"):
                if key in cell:
                    extras.append(f"{key}={cell[key]}")
            lines.append(
                f"{suite:<10} {name:<28} "
                + (f"{seconds:>12.6f} " if seconds is not None else f"{'—':>12} ")
                + f"{' '.join(extras):<24}"
            )
        for key, value in _flatten_meta(data.get("meta", {})):
            lines.append(
                f"{suite:<10} {'meta:' + key:<28} {'':>12} {value:<24g}"
            )
    return lines


def main(argv: "list[str]") -> int:
    directory = argv[1] if len(argv) > 1 else "."
    lines = summarize(directory)
    if not lines:
        print(f"no BENCH_*.json baselines under {directory}")
        return 2
    print("\n".join(lines))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
