"""Aggregate every committed ``BENCH_*.json`` into one trajectory table.

Usage: python tools/bench_summary.py [DIR]

Perf history lives in one baseline file per bench suite (read path,
sketch, serving, ingest, multi-way, planner accuracy, scatter/gather,
process-parallel builds).  This tool flattens them all into a single
greppable table — one line per ``suite/workload`` with its headline
number — plus each suite's meta headline facts, so "what did X cost at
this commit" is one grep away:

    python tools/bench_summary.py | grep serving

The two clocks in this repo measure different things and must never be
conflated: **wall-clock** suites time the Python implementation on the
machine that ran them, **simulated** suites price work on the cost-model
clock that Figs. 7/8 plot.  Every row therefore carries a unit column —
taken from the suite's ``meta.unit`` when present, else from a per-suite
fallback map — and the closing totals are kept separate per unit (a sum
across clocks would be meaningless).

Reads only committed baselines (``*.candidate.json`` intermediates are
skipped); exit code is 2 when no baseline files are found, 0 otherwise.
"""

from __future__ import annotations

import glob
import json
import os
import sys

#: meta keys worth a summary line of their own (headline derived metrics)
META_HIGHLIGHTS = (
    "speedup",
    "qps",
    "hit_rate",
    "blob_speedup_vs_seed",
    "coder_speedup_vs_seed",
    "result_mismatches",
)

WALL_UNIT = "wall s"
SIM_UNIT = "sim s"

#: suites predating the ``meta.unit`` convention, classified by whether
#: their seconds came from ``time.perf_counter`` or the simulated clock
FALLBACK_UNITS = {
    "ingest": WALL_UNIT,
    "read_path": WALL_UNIT,
    "serving": WALL_UNIT,
    "sketch": WALL_UNIT,
    "multiway": SIM_UNIT,
    "planner": SIM_UNIT,
    "scatter": SIM_UNIT,
}


def _suite_name(path: str) -> str:
    base = os.path.basename(path)
    return base[len("BENCH_"):-len(".json")]


def _unit_label(suite: str, meta: dict) -> str:
    """Normalise a suite's clock to a short unit-column label."""
    unit = str(meta.get("unit", ""))
    if "wall" in unit:
        return WALL_UNIT
    if "sim" in unit:
        return SIM_UNIT
    return FALLBACK_UNITS.get(suite, "s?")


def _flatten_meta(meta: dict, prefix: str = "") -> "list[tuple[str, float]]":
    rows = []
    for key, value in sorted(meta.items()):
        if isinstance(value, dict):
            rows.extend(_flatten_meta(value, prefix=f"{prefix}{key}."))
        elif f"{prefix}{key}".split(".")[-1] in META_HIGHLIGHTS and isinstance(
            value, (int, float)
        ):
            rows.append((f"{prefix}{key}", float(value)))
    return rows


def summarize(directory: str) -> "list[str]":
    """The trajectory table as a list of printable lines."""
    paths = sorted(
        path
        for path in glob.glob(os.path.join(directory, "BENCH_*.json"))
        if not path.endswith(".candidate.json")
    )
    if not paths:
        return []
    lines = []
    header = (
        f"{'suite':<10} {'workload':<28} {'seconds':>12} {'unit':<7} {'extra':<24}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    totals: "dict[str, tuple[float, int]]" = {}
    for path in paths:
        suite = _suite_name(path)
        with open(path) as fh:
            data = json.load(fh)
        unit = _unit_label(suite, data.get("meta", {}))
        for name, cell in sorted(data.get("workloads", {}).items()):
            seconds = cell.get("seconds")
            extras = []
            for key in ("ops", "per_op_us", "kv_reads", "network_bytes",
                        "chosen", "fastest"):
                if key in cell:
                    extras.append(f"{key}={cell[key]}")
            if seconds is not None:
                total, count = totals.get(unit, (0.0, 0))
                totals[unit] = (total + seconds, count + 1)
            lines.append(
                f"{suite:<10} {name:<28} "
                + (f"{seconds:>12.6f} " if seconds is not None else f"{'—':>12} ")
                + f"{unit:<7} "
                + f"{' '.join(extras):<24}"
            )
        for key, value in _flatten_meta(data.get("meta", {})):
            lines.append(
                f"{suite:<10} {'meta:' + key:<28} {'':>12} {'':<7} {value:<24g}"
            )
    lines.append("-" * len(header))
    for unit in sorted(totals):
        total, count = totals[unit]
        lines.append(
            f"{'total':<10} {f'{count} workloads':<28} {total:>12.6f} {unit:<7}"
        )
    return lines


def main(argv: "list[str]") -> int:
    directory = argv[1] if len(argv) > 1 else "."
    lines = summarize(directory)
    if not lines:
        print(f"no BENCH_*.json baselines under {directory}")
        return 2
    print("\n".join(lines))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
