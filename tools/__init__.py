"""Repository tooling (lint, docs checks, bench diffing).

Making ``tools`` a package lets ``python -m tools.analyze`` run repro-lint
from the repository root without any installation step.
"""
