PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench docs-check examples all

## tier-1: the full suite (unit + algorithms + integration + benchmarks)
test:
	$(PYTHON) -m pytest -x -q

## figure regenerations + planner-quality grid only
bench:
	$(PYTHON) -m pytest benchmarks/ -q

## docstring coverage + README code blocks actually run
docs-check:
	$(PYTHON) tools/docs_check.py

## run every example script end to end
examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/explain_plan.py

all: test docs-check
