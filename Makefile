PYTHON ?= python
export PYTHONPATH := src

.PHONY: test stress chaos bench bench-planner bench-wallclock bench-multiway bench-sketch bench-serving bench-ingest bench-scatter bench-parallel bench-all lint lint-changed docs-check examples all

## tier-1: the full suite (unit + algorithms + integration + benchmarks)
test:
	$(PYTHON) -m pytest -x -q

## heavy concurrency smoke tests (@pytest.mark.stress, excluded from
## tier-1): the serving-layer stress suite plus the scan-vs-split races
stress:
	$(PYTHON) -m pytest -m stress -q tests

## crash/fault-injection sweeps for async maintenance (@pytest.mark.chaos,
## excluded from tier-1): crash the worker at every drain point and prove
## recovery converges to the never-crashed state
chaos:
	$(PYTHON) -m pytest -m chaos -q tests/maintenance/test_chaos.py

## figure regenerations + planner-quality grid only
bench:
	$(PYTHON) -m pytest benchmarks/ -q

## planner-accuracy grid (fig7+fig8 hit rate + per-cell regret), diffed
## against the committed BENCH_planner.json baseline (warn-only)
bench-planner:
	BENCH_PLANNER_OUT=BENCH_planner.candidate.json $(PYTHON) -m pytest benchmarks/test_planner_accuracy.py -q
	$(PYTHON) tools/bench_diff.py BENCH_planner.json BENCH_planner.candidate.json

## wall-clock read-path micro-benchmarks, diffed against the committed
## BENCH_read_path.json baseline (warns, never fails, on regression)
bench-wallclock:
	BENCH_OUT=BENCH_read_path.candidate.json $(PYTHON) -m pytest benchmarks/test_wallclock.py -q
	$(PYTHON) tools/bench_diff.py BENCH_read_path.json BENCH_read_path.candidate.json

## n-way (3/4-way) grid: simulated per-cell costs of the three multi-way
## strategies, diffed against the committed BENCH_multiway.json (warn-only)
bench-multiway:
	BENCH_MULTIWAY_OUT=BENCH_multiway.candidate.json $(PYTHON) -m pytest benchmarks/test_multiway.py -q
	$(PYTHON) tools/bench_diff.py BENCH_multiway.json BENCH_multiway.candidate.json

## sketch (Golomb blob) encode/decode/membership micro-benchmarks, diffed
## against the committed BENCH_sketch.json baseline (warn-only)
bench-sketch:
	BENCH_SKETCH_OUT=BENCH_sketch.candidate.json $(PYTHON) -m pytest benchmarks/test_sketch.py -q
	$(PYTHON) tools/bench_diff.py BENCH_sketch.json BENCH_sketch.candidate.json

## concurrent query serving: QPS, latency percentiles, plan-cache hit rate,
## speedup over uncached per-query execution; diffed against the committed
## BENCH_serving.json baseline (warn-only)
bench-serving:
	BENCH_SERVING_OUT=BENCH_serving.candidate.json $(PYTHON) -m pytest benchmarks/test_serving.py -q
	$(PYTHON) tools/bench_diff.py BENCH_serving.json BENCH_serving.candidate.json

## sustained-ingest benchmark for the async maintenance pipeline: submit /
## drain / inline-apply timings with query results pinned at every drain
## point; diffed against the committed BENCH_ingest.json (warn-only)
bench-ingest:
	BENCH_INGEST_OUT=BENCH_ingest.candidate.json $(PYTHON) -m pytest benchmarks/test_ingest.py -q
	$(PYTHON) tools/bench_diff.py BENCH_ingest.json BENCH_ingest.candidate.json

## multi-server scatter/gather fan-out: simulated-clock speedup of 4
## region servers over 1 on scan / multi-get / ISL / BFHM workloads,
## diffed against the committed BENCH_scatter.json baseline (warn-only)
bench-scatter:
	BENCH_SCATTER_OUT=BENCH_scatter.candidate.json $(PYTHON) -m pytest benchmarks/test_scatter.py -q
	$(PYTHON) tools/bench_diff.py BENCH_scatter.json BENCH_scatter.candidate.json

## process-parallel index builds: wall-clock serial-vs-process timings
## (simulated metrics asserted identical; the >=2x speedup target only
## fires on >=4-core machines), diffed against the committed
## BENCH_parallel.json baseline (warn-only)
bench-parallel:
	BENCH_PARALLEL_OUT=BENCH_parallel.candidate.json $(PYTHON) -m pytest benchmarks/test_parallel_build.py -q
	$(PYTHON) tools/bench_diff.py BENCH_parallel.json BENCH_parallel.candidate.json

## one greppable trajectory table over every committed BENCH_*.json
bench-all:
	$(PYTHON) tools/bench_summary.py

## repro-lint (lock discipline / determinism / metering / exception
## safety), the gated typed-core mypy check, and the docs checks
lint:
	$(PYTHON) -m tools.analyze src/repro
	$(PYTHON) -m tools.run_mypy
	$(PYTHON) tools/docs_check.py

## fast local loop: lint only files changed vs HEAD
lint-changed:
	$(PYTHON) -m tools.analyze --changed src/repro

## docstring coverage + README code blocks actually run
docs-check:
	$(PYTHON) tools/docs_check.py

## run every example script end to end
examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/explain_plan.py
	$(PYTHON) examples/multiway_explain.py

all: test lint
