PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-wallclock docs-check examples all

## tier-1: the full suite (unit + algorithms + integration + benchmarks)
test:
	$(PYTHON) -m pytest -x -q

## figure regenerations + planner-quality grid only
bench:
	$(PYTHON) -m pytest benchmarks/ -q

## wall-clock read-path micro-benchmarks, diffed against the committed
## BENCH_read_path.json baseline (warns, never fails, on regression)
bench-wallclock:
	BENCH_OUT=BENCH_read_path.candidate.json $(PYTHON) -m pytest benchmarks/test_wallclock.py -q
	$(PYTHON) tools/bench_diff.py BENCH_read_path.json BENCH_read_path.candidate.json

## docstring coverage + README code blocks actually run
docs-check:
	$(PYTHON) tools/docs_check.py

## run every example script end to end
examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/explain_plan.py

all: test docs-check
