"""Serving-layer benchmark: QPS, latency percentiles, plan-cache hit rate.

A repeated-shape ``auto`` workload (the serving sweet spot: clients re-issue
the same query shapes with different arrival order) is served twice over
identically-built platforms:

* **concurrent** — ``QueryServer(workers=4)`` with the plan cache and the
  statement cache on, submissions flowing through ``execute_many``;
* **serialized** — ``QueryServer(workers=1)`` with both caches disabled, so
  every query pays parse + statistics + planning from scratch, one at a
  time.  This is what per-query engine usage looked like before the
  serving layer existed.

The speedup therefore measures what the serving layer adds end to end —
shared planning amortized across repeated shapes — while the bit-identity
tests in ``tests/serving/`` pin that none of it changes a single simulated
cost number.

Run through ``make bench-serving`` the results are written to a candidate
JSON (via ``BENCH_SERVING_OUT``) and diffed against the committed
``BENCH_serving.json`` baseline, warning — not failing — on regression.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.cluster.costmodel import EC2_PROFILE
from repro.core.bfhm.updates import WriteBackPolicy
from repro.platform import Platform
from repro.query.engine import RankJoinEngine
from repro.serving import QueryServer
from repro.tpch.generator import generate
from repro.tpch.loader import load_tpch
from repro.tpch.queries import Q1_SQL, Q2_SQL, q1, q2

SCALE = 0.05
SEED = 7
WORKERS = 4
REPS = 20

#: distinct query shapes clients keep re-issuing (all auto-planned)
SHAPES = [Q1_SQL.format(k=k) for k in (1, 5, 10, 20)] + [
    Q2_SQL.format(k=k) for k in (1, 5, 10, 20)
]

#: minimum acceptable plan-cache hit rate over the repeated-shape workload
MIN_HIT_RATE = 0.90
#: minimum acceptable QPS speedup of the serving stack over per-query use
MIN_SPEEDUP = 2.0


def _loaded_platform() -> Platform:
    platform = Platform(EC2_PROFILE)
    load_tpch(platform.store, generate(micro_scale=SCALE, seed=SEED))
    engine = RankJoinEngine(
        platform, bfhm={"write_back": WriteBackPolicy.OFFLINE}
    )
    for name in ("isl", "bfhm"):
        engine.algorithm(name).prepare(q1(1))
        engine.algorithm(name).prepare(q2(1))
    return platform


@pytest.fixture(scope="module")
def results() -> "dict[str, object]":
    """Serve the workload both ways and package QPS/latency/cache stats."""
    workload = [shape for _ in range(REPS) for shape in SHAPES]

    serialized_server = QueryServer(
        _loaded_platform(),
        workers=1,
        plan_cache_capacity=0,
        statement_cache_capacity=0,
    )
    try:
        start = time.perf_counter()
        serialized = serialized_server.execute_many(workload)
        serialized_s = time.perf_counter() - start
    finally:
        serialized_server.close()

    concurrent_server = QueryServer(_loaded_platform(), workers=WORKERS)
    try:
        start = time.perf_counter()
        concurrent = concurrent_server.execute_many(workload)
        concurrent_s = time.perf_counter() - start
        stats = concurrent_server.stats()
        percentiles = concurrent_server.latency_percentiles()
    finally:
        concurrent_server.close()

    return {
        "queries": len(workload),
        "serialized": serialized,
        "concurrent": concurrent,
        "serialized_s": serialized_s,
        "concurrent_s": concurrent_s,
        "speedup": serialized_s / concurrent_s,
        "qps": len(workload) / concurrent_s,
        "hit_rate": stats["plan_cache"]["hit_rate"],
        "plan_cache": stats["plan_cache"],
        "statement_hits": stats["statement_hits"],
        "failed": stats["failed"],
        "percentiles": percentiles,
    }


class TestServingBench:
    def test_every_query_succeeded_identically(self, results):
        assert results["failed"] == 0
        for served, expected in zip(results["concurrent"], results["serialized"]):
            assert served.error is None and expected.error is None
            assert served.result.tuples == expected.result.tuples
            assert served.result.metrics == expected.result.metrics

    def test_plan_cache_hit_rate(self, results):
        """REPS repeats of each shape: only the first plan per shape (plus
        post-build invalidations) may miss."""
        assert results["hit_rate"] >= MIN_HIT_RATE, results["plan_cache"]

    def test_serving_speedup(self, results):
        """The serving stack must beat per-query engine usage by >= 2x on a
        repeated-shape workload (amortized parse/statistics/planning)."""
        assert results["speedup"] >= MIN_SPEEDUP, {
            "serialized_s": results["serialized_s"],
            "concurrent_s": results["concurrent_s"],
            "speedup": results["speedup"],
        }

    def test_report_written(self, results):
        """Write the JSON report when BENCH_SERVING_OUT names a path."""
        out_path = os.environ.get("BENCH_SERVING_OUT")
        if not out_path:
            pytest.skip("BENCH_SERVING_OUT not set; not writing a report")
        report = {
            "meta": {
                "scale": SCALE,
                "seed": SEED,
                "workers": WORKERS,
                "shapes": len(SHAPES),
                "reps": REPS,
                "queries": results["queries"],
                "qps": round(results["qps"], 2),
                "speedup": round(results["speedup"], 3),
                "plan_cache": results["plan_cache"],
                "statement_hits": results["statement_hits"],
                "latency_percentiles_s": {
                    key: round(value, 6)
                    for key, value in results["percentiles"].items()
                },
            },
            "workloads": {
                "serialized": {"seconds": round(results["serialized_s"], 6)},
                "concurrent": {"seconds": round(results["concurrent_s"], 6)},
            },
        }
        with open(out_path, "w") as fh:
            json.dump(report, fh, indent=1, sort_keys=True)
            fh.write("\n")
