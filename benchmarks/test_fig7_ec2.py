"""Figure 7 — Q1 and Q2 on the EC2 profile (§7.2).

Six panels: query processing time, network bandwidth, and dollar cost for
Q1 (a–c) and Q2 (d–f), sweeping k over {1, 10, 20, 50, 100} with HIVE,
PIG, IJLMR, ISL, and BFHM.  Each test regenerates one panel's series,
prints it, and asserts the paper's qualitative shape.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import KS
from repro.bench.harness import run_series
from repro.bench.reporting import format_recall, format_series
from repro.tpch.queries import q1, q2

ALGORITHMS = ["HIVE", "PIG", "IJLMR", "ISL", "BFHM"]
_CACHE = {}


def _series(setup, query_factory, name):
    if name not in _CACHE:
        _CACHE[name] = run_series(
            setup, query_factory, KS, [a.lower() for a in ALGORITHMS]
        )
    return _CACHE[name]


def _by_k(points):
    return {point.k: point for point in points}


# ---------------------------------------------------------------- Q1 ------


@pytest.mark.parametrize("query_factory,qname", [(q1, "Q1"), (q2, "Q2")],
                         ids=["Q1", "Q2"])
class TestFig7:
    def test_time_panel(self, ec2_setup, benchmark, query_factory, qname):
        """Figs. 7(a)/(d): HIVE ≫ PIG ≫ IJLMR ≫ ISL ≥ BFHM; BFHM wins."""
        series = benchmark.pedantic(
            lambda: _series(ec2_setup, query_factory, qname),
            rounds=1, iterations=1,
        )
        print()
        print(format_series(
            f"Fig 7 {qname} EC2 — query processing time (simulated s)",
            series, lambda p: p.time_s,
        ))
        print(format_recall(series))
        for k in KS:
            hive = _by_k(series["hive"])[k].time_s
            pig = _by_k(series["pig"])[k].time_s
            ijlmr = _by_k(series["ijlmr"])[k].time_s
            isl = _by_k(series["isl"])[k].time_s
            bfhm = _by_k(series["bfhm"])[k].time_s
            assert hive > 2 * pig, f"k={k}: Hive should trail Pig clearly"
            assert pig > 2 * ijlmr, f"k={k}: Pig should trail IJLMR clearly"
            assert ijlmr > isl and ijlmr > bfhm, f"k={k}"
            # the paper's EC2 result: BFHM is the across-the-board winner
            assert bfhm <= isl * 1.02, f"k={k}: BFHM should win on EC2"

    def test_bandwidth_panel(self, ec2_setup, benchmark, query_factory, qname):
        """Figs. 7(b)/(e): IJLMR lowest at small k; BFHM closes the gap as
        k grows; Hive worst by orders of magnitude."""
        series = benchmark.pedantic(
            lambda: _series(ec2_setup, query_factory, qname),
            rounds=1, iterations=1,
        )
        print()
        print(format_series(
            f"Fig 7 {qname} EC2 — network bandwidth (bytes)",
            series, lambda p: p.network_bytes,
        ))
        small_k, large_k = KS[0], KS[-1]
        hive = _by_k(series["hive"])
        pig = _by_k(series["pig"])
        ijlmr = _by_k(series["ijlmr"])
        bfhm = _by_k(series["bfhm"])
        for k in KS:
            assert hive[k].network_bytes > 10 * pig[k].network_bytes
            assert pig[k].network_bytes > ijlmr[k].network_bytes
        # IJLMR ships only mapper top-k lists: best at small k
        assert ijlmr[small_k].network_bytes < bfhm[small_k].network_bytes
        # ... but BFHM closes the relative gap as k increases
        gap_small = bfhm[small_k].network_bytes / ijlmr[small_k].network_bytes
        gap_large = bfhm[large_k].network_bytes / ijlmr[large_k].network_bytes
        assert gap_large < gap_small

    def test_dollar_panel(self, ec2_setup, benchmark, query_factory, qname):
        """Figs. 7(c)/(f): MapReduce approaches worst (full scans); BFHM
        the clear winner, 1–3 orders below ISL's cost."""
        series = benchmark.pedantic(
            lambda: _series(ec2_setup, query_factory, qname),
            rounds=1, iterations=1,
        )
        print()
        print(format_series(
            f"Fig 7 {qname} EC2 — dollar cost (KV read units)",
            series, lambda p: p.kv_reads,
        ))
        for k in KS:
            hive = _by_k(series["hive"])[k].kv_reads
            pig = _by_k(series["pig"])[k].kv_reads
            ijlmr = _by_k(series["ijlmr"])[k].kv_reads
            isl = _by_k(series["isl"])[k].kv_reads
            bfhm = _by_k(series["bfhm"])[k].kv_reads
            assert hive == pig  # both scan the full base tables
            assert hive > ijlmr > isl > bfhm, f"k={k}"
        # BFHM's margin over ISL is widest at small k (at paper scale it
        # reaches 1-3 orders of magnitude; the miniature dataset compresses
        # the ratio because reverse-mapping fetches grow with k)
        small_k = KS[0]
        assert (_by_k(series["bfhm"])[small_k].kv_reads * 2
                <= _by_k(series["isl"])[small_k].kv_reads)

    def test_recall_is_perfect_everywhere(self, ec2_setup, benchmark,
                                          query_factory, qname):
        series = benchmark.pedantic(
            lambda: _series(ec2_setup, query_factory, qname),
            rounds=1, iterations=1,
        )
        for name, points in series.items():
            for point in points:
                assert point.recall == 1.0, (name, point.k)


class TestClusterScaling:
    def test_more_workers_speed_up_mapreduce(self, benchmark):
        """§7.1: 1+2 → 1+8 EC2 nodes gave ≈30% lower MR times with other
        metrics roughly unchanged."""
        from repro.bench.harness import build_setup, run_point
        from repro.cluster.costmodel import ec2_profile_with_nodes
        from benchmarks.conftest import BENCH_SEED, EC2_MICRO_SCALE

        def measure():
            results = {}
            for workers in (2, 8):
                setup = build_setup(
                    ec2_profile_with_nodes(workers),
                    micro_scale=EC2_MICRO_SCALE, seed=BENCH_SEED,
                )
                results[workers] = run_point(setup, q1(10), "pig")
            return results

        results = benchmark.pedantic(measure, rounds=1, iterations=1)
        faster = results[8].time_s
        slower = results[2].time_s
        print(f"\nPIG Q1 k=10: 1+2 nodes {slower:.1f}s -> 1+8 nodes {faster:.1f}s")
        assert faster < slower
        # bandwidth and dollar cost stay roughly flat across cluster sizes
        assert results[8].kv_reads == pytest.approx(results[2].kv_reads, rel=0.05)
        assert results[8].network_bytes == pytest.approx(
            results[2].network_bytes, rel=0.35
        )
