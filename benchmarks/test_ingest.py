"""Sustained-ingest benchmark: the async maintenance pipeline under load.

A stream of TPC-H refresh sets is pushed through the WAL-backed
maintenance pipeline while a synchronous twin applies the identical
records inline.  At **every drain point** the benchmark pins query
results: the async platform, queried after each drained batch, must
return exactly the scores the synchronous twin returns at the same
applied prefix — the §6 bounded-staleness contract made executable.

Measured workloads (written to ``BENCH_INGEST_OUT`` and diffed against
the committed ``BENCH_ingest.json``, warn-only):

* ``submit``   — enqueue latency of the whole refresh stream (what a
  writer waits for under async maintenance);
* ``drain``    — worker time to apply the backlog in batches;
* ``sync_inline`` — the synchronous twin applying the same records
  inline (what the writer would have waited for without the pipeline).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.bench.harness import build_setup
from repro.cluster.costmodel import EC2_PROFILE
from repro.core.bfhm.algorithm import BFHMRankJoin
from repro.core.ijlmr import IJLMRRankJoin
from repro.core.isl import ISLRankJoin
from repro.maintenance.interceptor import MaintainedRelation
from repro.maintenance.worker import MaintenancePipeline
from repro.tpch.loader import lineitem_by_order_binding, orders_binding
from repro.tpch.queries import q2
from repro.tpch.updates import generate_refresh_sets

SCALE = 0.2
SEED = 42
ROUNDS = 3
BATCH_SIZE = 2
K = 10


def _rig():
    """A loaded platform with Q2 indexes built and wrapped relations."""
    setup = build_setup(EC2_PROFILE, micro_scale=SCALE, seed=SEED)
    platform = setup.platform
    algorithms = {
        "ijlmr": IJLMRRankJoin(platform),
        "isl": ISLRankJoin(platform),
        "bfhm": BFHMRankJoin(platform),
    }
    for algorithm in algorithms.values():
        algorithm.prepare(q2(1))
        setup.engine.register(algorithm.name.lower(), algorithm)
    relations = {
        "orders": MaintainedRelation(
            platform, orders_binding(), maintain_ijlmr=True,
            maintain_isl=True, bfhm_manager=algorithms["bfhm"].update_manager,
        ),
        "lineitem": MaintainedRelation(
            platform, lineitem_by_order_binding(), maintain_ijlmr=True,
            maintain_isl=True, bfhm_manager=algorithms["bfhm"].update_manager,
        ),
    }
    return setup, relations


def _submit_refresh(pipeline, refresh):
    pipeline.submit_insert_batch(
        "orders", [(o["orderkey"], o) for o in refresh.insert_orders]
    )
    pipeline.submit_insert_batch(
        "lineitem", [(i["rowkey"], i) for i in refresh.insert_lineitems]
    )
    pipeline.submit_delete_batch("orders", refresh.delete_orders)
    pipeline.submit_delete_batch("lineitem", refresh.delete_lineitems)


def _apply_record_sync(relations, record):
    if record.op == "insert":
        relations[record.table].insert_batch(list(record.rows))
    else:
        relations[record.table].delete_batch(list(record.rows))


def _scores(setup) -> "list[float]":
    return setup.engine.execute(q2(K), algorithm="isl").scores()


@pytest.fixture(scope="module")
def results() -> "dict[str, object]":
    """Run the sustained-ingest workload; pin results at each drain point."""
    async_setup, async_relations = _rig()
    sync_setup, sync_relations = _rig()
    pipeline = MaintenancePipeline(
        async_setup.platform, async_relations.values(), batch_size=BATCH_SIZE
    )

    refreshes = generate_refresh_sets(async_setup.data, count=ROUNDS)

    start = time.perf_counter()
    for refresh in refreshes:
        _submit_refresh(pipeline, refresh)
    submit_s = time.perf_counter() - start
    backlog = pipeline.lag()
    records = {r.sequence: r.payload for r in pipeline.log.records()}

    # drain in batches; after every batch, pin the async platform's query
    # results against the sync twin advanced to the same applied prefix
    drain_points = 0
    mismatches = []
    drain_s = 0.0
    while pipeline.lag() > 0:
        before = pipeline.applied_sequence
        start = time.perf_counter()
        pipeline.drain_batch()
        drain_s += time.perf_counter() - start
        for sequence in range(before + 1, pipeline.applied_sequence + 1):
            _apply_record_sync(sync_relations, records[sequence])
        drain_points += 1
        if _scores(async_setup) != _scores(sync_setup):
            mismatches.append(drain_points)

    # a third rig applies the same stream inline (no pipeline), timing
    # what a writer would wait for under synchronous maintenance
    inline_setup, inline_relations = _rig()
    inline_refreshes = generate_refresh_sets(inline_setup.data, count=ROUNDS)
    start = time.perf_counter()
    for refresh in inline_refreshes:
        _submit_refresh_sync(inline_relations, refresh)
    sync_inline_s = time.perf_counter() - start

    return {
        "records": backlog,
        "rows": pipeline.stats()["rows_applied"],
        "drain_points": drain_points,
        "mismatches": mismatches,
        "submit_s": submit_s,
        "drain_s": drain_s,
        "sync_inline_s": sync_inline_s,
        "stats": pipeline.stats(),
    }


def _submit_refresh_sync(relations, refresh):
    relations["orders"].insert_batch(
        [(o["orderkey"], o) for o in refresh.insert_orders]
    )
    relations["lineitem"].insert_batch(
        [(i["rowkey"], i) for i in refresh.insert_lineitems]
    )
    relations["orders"].delete_batch(refresh.delete_orders)
    relations["lineitem"].delete_batch(refresh.delete_lineitems)


class TestIngestBench:
    def test_results_pinned_at_every_drain_point(self, results):
        """The async platform's top-k answers match the synchronous twin
        at every single drained prefix — never a wrong answer, only a
        bounded-stale one."""
        assert results["drain_points"] > 1
        assert results["mismatches"] == []

    def test_backlog_fully_drained(self, results):
        stats = results["stats"]
        assert stats["backlog"] == 0
        assert stats["records_applied"] == results["records"]
        assert stats["dead_letters"] == 0

    def test_submit_is_cheaper_than_inline_apply(self, results):
        """The point of async maintenance: enqueue returns to the writer
        far faster than applying base + 3 indexes inline."""
        assert results["submit_s"] < results["sync_inline_s"]

    def test_report_written(self, results):
        """Write the JSON report when BENCH_INGEST_OUT names a path."""
        out_path = os.environ.get("BENCH_INGEST_OUT")
        if not out_path:
            pytest.skip("BENCH_INGEST_OUT not set; not writing a report")
        report = {
            "meta": {
                "scale": SCALE,
                "seed": SEED,
                "rounds": ROUNDS,
                "batch_size": BATCH_SIZE,
                "records": results["records"],
                "rows": results["rows"],
                "drain_points": results["drain_points"],
                "result_mismatches": len(results["mismatches"]),
                # sub-millisecond and therefore too noisy to diff: reported
                # for context, asserted (submit < inline) in the tests
                "submit_seconds": round(results["submit_s"], 6),
            },
            "workloads": {
                "drain": {"seconds": round(results["drain_s"], 6)},
                "sync_inline": {"seconds": round(results["sync_inline_s"], 6)},
            },
        }
        with open(out_path, "w") as fh:
            json.dump(report, fh, indent=1, sort_keys=True)
            fh.write("\n")
