"""Scatter/gather benchmark: multi-server fan-out speedup at 4 servers.

The same workloads run twice over identically-seeded platforms — a
single-server topology (every RPC round serial, the paper-faithful
fig7/8 configuration) and a 4-region-server topology (multi-region scans,
multi-gets, ISL batch rounds and BFHM fetches scatter per server; a round
costs the slowest server's queue plus dispatch overhead, per
``CostModel.scatter_round_time``).

Speedups are measured on the **simulated clock** — the very metric
Figs. 7/8 plot — because that is what the per-server queueing model
changes; byte and KV-read counters must stay *identical* across the two
topologies (fan-out hides latency, it never removes work).  Workloads:

* ``scan``      — full multi-region scans of lineitem/orders/part
* ``multi_get`` — strided point-get batches across lineitem regions
* ``isl``       — Q1 via ISL (paired batch rounds scatter)
* ``bfhm``      — Q1 via BFHM (bucket + reverse-map fetches scatter)

ISL/BFHM gains are bounded by co-location (both ISL cursors walk one
index table; BFHM bucket pairs share row keys) — the aggregate ≥2×
target is carried by the scan/multi-get fan-out, mirroring how real
HBase deployments see scatter wins mostly on multi-region reads.

Run through ``make bench-scatter`` the results are written to a candidate
JSON (via ``BENCH_SCATTER_OUT``) and diffed against the committed
``BENCH_scatter.json`` baseline, warning — not failing — on regression.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.bench.harness import ExperimentSetup, build_setup
from repro.cluster.costmodel import EC2_PROFILE
from repro.store.client import Get, Scan
from repro.tpch.loader import FAMILY, LINEITEM, ORDERS, PART
from repro.tpch.queries import q1

SCALE = 0.2
SEED = 42
SERVERS = 4
SCAN_TABLES = (LINEITEM, ORDERS, PART)
MULTI_GET_STRIDE = 2
QUERY_KS = (10, 50)

#: required aggregate simulated-time speedup across all workloads
MIN_AGGREGATE_SPEEDUP = 2.0


def _setup(num_servers: int) -> ExperimentSetup:
    return build_setup(
        EC2_PROFILE,
        micro_scale=SCALE,
        seed=SEED,
        num_servers=num_servers,
        prebuild=["isl", "bfhm"],
        prebuild_query=q1(1),
    )


def _store_delta(setup: ExperimentSetup, fn):
    """Run ``fn`` and return (sim-clock/counter deltas, fn's payload)."""
    metrics = setup.platform.metrics
    before = metrics.snapshot()
    payload = fn()
    after = metrics.snapshot()
    return (
        {
            "seconds": after.sim_time_s - before.sim_time_s,
            "network_bytes": after.network_bytes - before.network_bytes,
            "kv_reads": after.kv_reads - before.kv_reads,
        },
        payload,
    )


def _scan_workload(setup: ExperimentSetup):
    def run():
        keys = []
        for table_name in SCAN_TABLES:
            htable = setup.platform.store.table(table_name)
            scan = Scan(families={FAMILY}, caching=200, scatter=True)
            keys.append((table_name, tuple(row.row for row in htable.scan(scan))))
        return tuple(keys)

    return _store_delta(setup, run)


def _multi_get_workload(setup: ExperimentSetup):
    row_keys = sorted(
        record["rowkey"] for record in setup.data.lineitems
    )[::MULTI_GET_STRIDE]

    def run():
        htable = setup.platform.store.table(LINEITEM)
        gets = [Get(key, families={FAMILY}) for key in row_keys]
        return tuple(row.row for row in htable.multi_get(gets))

    return _store_delta(setup, run)


def _query_workload(setup: ExperimentSetup, algorithm: str):
    totals = {"seconds": 0.0, "network_bytes": 0, "kv_reads": 0}
    fingerprint = []
    for k in QUERY_KS:
        result = setup.engine.execute(q1(k), algorithm=algorithm)
        totals["seconds"] += result.metrics.sim_time_s
        totals["network_bytes"] += result.metrics.network_bytes
        totals["kv_reads"] += result.metrics.kv_reads
        # scores pin result quality without tripping on tie *order*,
        # which legitimately differs between alternating serial pulls
        # and paired scatter rounds
        fingerprint.append(
            tuple(sorted(round(t.score, 6) for t in result.tuples))
        )
    return totals, tuple(fingerprint)


@pytest.fixture(scope="module")
def results():
    serial_setup = _setup(1)
    scatter_setup = _setup(SERVERS)
    workloads = {}
    for name, fn in (
        ("scan", _scan_workload),
        ("multi_get", _multi_get_workload),
        ("isl", lambda s: _query_workload(s, "isl")),
        ("bfhm", lambda s: _query_workload(s, "bfhm")),
    ):
        serial, serial_payload = fn(serial_setup)
        scatter, scatter_payload = fn(scatter_setup)
        workloads[name] = {
            "serial": serial,
            "scatter": scatter,
            "serial_payload": serial_payload,
            "scatter_payload": scatter_payload,
            "speedup": serial["seconds"] / scatter["seconds"],
        }
    total_serial = sum(cell["serial"]["seconds"] for cell in workloads.values())
    total_scatter = sum(cell["scatter"]["seconds"] for cell in workloads.values())
    return {
        "workloads": workloads,
        "aggregate_speedup": total_serial / total_scatter,
        "explain": scatter_setup.engine.plan(q1(10)).render(),
    }


class TestScatterBench:
    def test_results_identical_across_topologies(self, results):
        """Fan-out must not change what any workload returns."""
        for name, cell in results["workloads"].items():
            assert cell["serial_payload"] == cell["scatter_payload"], name

    def test_work_counters_identical(self, results):
        """Bytes moved and KV reads are topology-invariant — the queue
        model only re-times the same work."""
        for name, cell in results["workloads"].items():
            assert cell["serial"]["network_bytes"] == cell["scatter"]["network_bytes"], name
            assert cell["serial"]["kv_reads"] == cell["scatter"]["kv_reads"], name

    def test_every_workload_speeds_up(self, results):
        for name, cell in results["workloads"].items():
            assert cell["speedup"] > 1.0, (name, cell["speedup"])

    def test_aggregate_speedup(self, results):
        """≥2× simulated-time speedup at 4 servers across the combined
        scan + multi-get + ISL-batch + BFHM-fetch workload."""
        assert results["aggregate_speedup"] >= MIN_AGGREGATE_SPEEDUP, {
            name: round(cell["speedup"], 3)
            for name, cell in results["workloads"].items()
        }

    def test_explain_shows_fanout_components(self, results):
        """EXPLAIN on the multi-server topology surfaces the per-server
        fan-out cost components."""
        rendered = results["explain"]
        assert f"topology: {SERVERS} region servers" in rendered
        assert "fanout" in rendered

    def test_report_written(self, results):
        """Write the JSON report when BENCH_SCATTER_OUT names a path."""
        out_path = os.environ.get("BENCH_SCATTER_OUT")
        if not out_path:
            pytest.skip("BENCH_SCATTER_OUT not set; not writing a report")
        report = {
            "meta": {
                "scale": SCALE,
                "seed": SEED,
                "servers": SERVERS,
                "unit": "simulated seconds (the fig7/8 clock)",
                "speedup": round(results["aggregate_speedup"], 3),
            },
            "workloads": {
                name: {
                    "seconds": round(cell["scatter"]["seconds"], 6),
                    "serial_seconds": round(cell["serial"]["seconds"], 6),
                    "speedup": round(cell["speedup"], 3),
                    "kv_reads": int(cell["scatter"]["kv_reads"]),
                    "network_bytes": int(cell["scatter"]["network_bytes"]),
                }
                for name, cell in results["workloads"].items()
            },
        }
        with open(out_path, "w") as fh:
            json.dump(report, fh, indent=1, sort_keys=True)
            fh.write("\n")
