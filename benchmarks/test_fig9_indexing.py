"""Figure 9 — index construction time (§7.2).

Build times for the IJLMR, ISL, BFHM, and DRJN indices on both cluster
profiles and across dataset sizes, plus the paper's headline observation:
index build + query is on par with (or below) a single Pig run, so indices
pay for themselves within one query.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import build_setup, run_point
from repro.bench.reporting import format_table
from repro.cluster.costmodel import EC2_PROFILE, LC_PROFILE
from repro.tpch.queries import q1

INDEXED = ["ijlmr", "isl", "bfhm", "drjn"]


def _build_all(profile, micro_scale):
    setup = build_setup(profile, micro_scale=micro_scale, seed=7)
    reports = {}
    for name in INDEXED:
        algorithm = setup.engine.algorithm(name)
        built = algorithm.prepare(q1(1))
        reports[name] = sum(r.build_time_s for r in built)
    return setup, reports


class TestFig9:
    def test_indexing_time_both_profiles(self, benchmark):
        """Fig. 9: indexing scales with dataset and cluster; one MR pass
        per relation."""
        def measure():
            rows = {}
            for profile, scale in ((EC2_PROFILE, 0.5), (LC_PROFILE, 2.0)):
                _, reports = _build_all(profile, scale)
                rows[profile.name] = reports
            return rows

        rows = benchmark.pedantic(measure, rounds=1, iterations=1)
        print()
        print(format_table(
            "Fig 9 — indexing time (simulated s, Part+Lineitem of Q1)",
            list(rows),
            INDEXED,
            [[f"{rows[profile][name]:.1f}" for name in INDEXED]
             for profile in rows],
        ))
        for profile_rows in rows.values():
            for name in INDEXED:
                assert profile_rows[name] > 0

    def test_indexing_scales_with_data(self, benchmark):
        def measure():
            times = {}
            for scale in (0.25, 1.0):
                _, reports = _build_all(EC2_PROFILE, scale)
                times[scale] = reports
            return times

        times = benchmark.pedantic(measure, rounds=1, iterations=1)
        for name in INDEXED:
            assert times[1.0][name] > times[0.25][name], (
                f"{name} build time should grow with the dataset"
            )

    def test_build_plus_query_beats_pig(self, benchmark):
        """§7.2: "we can afford to build our indices just before executing
        a query, and still be competitive against PIG" (and Hive)."""
        def measure():
            setup = build_setup(EC2_PROFILE, micro_scale=0.5, seed=7)
            pig = run_point(setup, q1(10), "pig")
            hive = run_point(setup, q1(10), "hive")
            totals = {}
            for name in ("isl", "bfhm"):
                algorithm = setup.engine.algorithm(name)
                build_time = sum(r.build_time_s for r in algorithm.prepare(q1(1)))
                query = run_point(setup, q1(10), name)
                totals[name] = build_time + query.time_s
            return pig.time_s, hive.time_s, totals

        pig_time, hive_time, totals = benchmark.pedantic(
            measure, rounds=1, iterations=1
        )
        print(f"\nPIG {pig_time:.1f}s  HIVE {hive_time:.1f}s  "
              + "  ".join(f"{n}: build+query {t:.1f}s" for n, t in totals.items()))
        for name, total in totals.items():
            assert total < hive_time, name
            assert total < pig_time * 1.5, name  # on par or better
