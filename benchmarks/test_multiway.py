"""N-way rank joins as a measured workload (§3 made concrete).

A small 3-way / 4-way TPC-H grid over the shared ``partkey`` attribute:

* 3-way: ``part(retailprice) ⋈ lineitem(extendedprice) ⋈ lineitem(discount)``
* 4-way: the 3-way plus ``lineitem(tax)``

Every cell measures all three n-way strategies — the ISL coordinator
(`MultiWayISLRankJoin`), the index-free HRJN pipeline, and the left-deep
BFHM cascade — asserting 100% recall against the naive n-way ground truth
and that ``algorithm="auto"`` plans and runs end to end.

Run through ``make bench-multiway`` the per-cell *simulated* seconds are
written to a candidate JSON (via ``BENCH_MULTIWAY_OUT``) and diffed
warn-only against the committed ``BENCH_multiway.json`` baseline; the
numbers are deterministic, so any drift is a real behavior change.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.bench.harness import build_setup
from repro.cluster.costmodel import EC2_PROFILE
from repro.query.spec import RankJoinQuery
from repro.relational.binding import RelationBinding, load_relation
from repro.relational.multiway import naive_rank_join_multi

MICRO_SCALE = 0.3
SEED = 42
KS = [1, 10, 25]
ALGORITHMS = ["isl", "hrjn", "bfhm"]

_CACHE: dict = {}


def _bindings(arity: int) -> "list[RelationBinding]":
    inputs = [
        RelationBinding("part", join_column="partkey",
                        score_column="retailprice", alias="P"),
        RelationBinding("lineitem", join_column="partkey",
                        score_column="extendedprice", alias="L1"),
        RelationBinding("lineitem", join_column="partkey",
                        score_column="discount", alias="L2"),
        RelationBinding("lineitem", join_column="partkey",
                        score_column="tax", alias="L3"),
    ]
    return inputs[:arity]


@pytest.fixture(scope="session")
def multiway_setup():
    setup = build_setup(EC2_PROFILE, micro_scale=MICRO_SCALE, seed=SEED)
    for arity in (3, 4):
        query = RankJoinQuery.of(_bindings(arity), "sum", 1)
        setup.engine.prepare(query, algorithms=["isl", "bfhm"])
    return setup


def _grid(setup):
    """Measure every (arity, k, algorithm) cell once per session."""
    if "grid" in _CACHE:
        return _CACHE["grid"]
    cells = []
    for arity in (3, 4):
        bindings = _bindings(arity)
        relations = [
            load_relation(setup.platform.store, binding)
            for binding in bindings
        ]
        for k in KS:
            query = RankJoinQuery.of(bindings, "sum", k)
            truth = naive_rank_join_multi(relations, query.function, k)
            measured = {}
            for name in ALGORITHMS:
                result = setup.engine.execute(query, algorithm=name)
                measured[name] = result
                assert result.recall_against(truth) == 1.0, (arity, k, name)
            plan = setup.engine.plan(query)
            cells.append((arity, k, measured, plan))
    _CACHE["grid"] = cells
    return cells


class TestMultiwayGrid:
    def test_all_strategies_full_recall(self, multiway_setup, benchmark):
        """The headline: every n-way strategy keeps the paper's 100%-recall
        guarantee at arity 3 and 4 (asserted inside the grid sweep)."""
        cells = benchmark.pedantic(
            lambda: _grid(multiway_setup), rounds=1, iterations=1
        )
        assert len(cells) == 2 * len(KS)

    def test_cascade_dominates_network_traffic(self, multiway_setup):
        """BFHM's §7.3 network story survives the cascade: it moves far
        fewer bytes than streaming every relation to the coordinator."""
        for arity, k, measured, _ in _grid(multiway_setup):
            assert (
                measured["bfhm"].metrics.network_bytes
                < measured["hrjn"].metrics.network_bytes / 5
            ), (arity, k)

    def test_auto_plans_at_any_arity(self, multiway_setup):
        """`algorithm="auto"` produces a ranked plan whose winner runs."""
        for arity in (3, 4):
            query = RankJoinQuery.of(_bindings(arity), "sum", 10)
            result = multiway_setup.engine.execute(query)  # auto
            plan = multiway_setup.engine.last_plan
            assert plan is not None
            assert len(plan.estimates) == len(ALGORITHMS)
            assert result.tuples

    def test_explain_shows_cascade_stages(self, multiway_setup):
        query = RankJoinQuery.of(_bindings(4), "sum", 10)
        plan = multiway_setup.engine.plan(query)
        estimate = plan.estimate("bfhm-cascade")
        # a 4-way cascade prices three binary stages, each under its own
        # cost components
        for stage in ("s1 ", "s2 ", "s3 "):
            assert any(c.startswith(stage) for c in estimate.breakdown), stage

    def test_bench_multiway_report_written(self, multiway_setup):
        out_path = os.environ.get("BENCH_MULTIWAY_OUT")
        if not out_path:
            pytest.skip("BENCH_MULTIWAY_OUT not set; not writing a report")
        workloads = {}
        for arity, k, measured, plan in _grid(multiway_setup):
            for name, result in measured.items():
                workloads[f"{arity}way_k{k}_{name}"] = {
                    "seconds": round(result.metrics.sim_time_s, 6),
                    "network_bytes": result.metrics.network_bytes,
                    "kv_reads": result.metrics.kv_reads,
                }
            workloads[f"{arity}way_k{k}_plan"] = {
                "seconds": round(plan.best.time_s, 6),
                "chosen": plan.chosen,
            }
        with open(out_path, "w") as fh:
            json.dump({"workloads": workloads}, fh, indent=1, sort_keys=True)
            fh.write("\n")
