"""§7.2's online-update experiment.

TPC-H refresh sets (≈600·s insertions + ≈150·s deletions per set) are
applied through the maintenance interceptors; queries then run with the
*eager* BFHM write-back — the worst case for query latency, since the
coordinator reconstructs and writes back stale blobs at the start of query
processing.  The paper reports < 10% query-time overhead; we assert the
same bound, and that recall stays perfect throughout.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import build_setup, run_point
from repro.cluster.costmodel import LC_PROFILE
from repro.core.bfhm.algorithm import BFHMRankJoin
from repro.core.bfhm.updates import WriteBackPolicy
from repro.maintenance.interceptor import MaintainedRelation
from repro.tpch.loader import lineitem_by_order_binding, orders_binding
from repro.tpch.queries import q2
from repro.tpch.updates import generate_refresh_sets


def _setup_with_updates():
    setup = build_setup(LC_PROFILE, micro_scale=1.0, seed=11)
    algorithm = BFHMRankJoin(
        setup.platform, write_back=WriteBackPolicy.EAGER
    )
    algorithm.prepare(q2(1))
    setup.engine.register("bfhm", algorithm)
    relations = {
        "orders": MaintainedRelation(
            setup.platform, orders_binding(),
            bfhm_manager=algorithm.update_manager,
        ),
        "lineitem": MaintainedRelation(
            setup.platform, lineitem_by_order_binding(),
            bfhm_manager=algorithm.update_manager,
        ),
    }
    return setup, relations


def _apply(relations, refresh):
    """Apply one refresh set through the batched maintenance write path."""
    relations["orders"].insert_batch(
        [(order["orderkey"], order) for order in refresh.insert_orders]
    )
    relations["lineitem"].insert_batch(
        [(item["rowkey"], item) for item in refresh.insert_lineitems]
    )
    relations["orders"].delete_batch(refresh.delete_orders)
    relations["lineitem"].delete_batch(refresh.delete_lineitems)


class TestOnlineUpdates:
    def test_eager_writeback_overhead_under_10_percent(self, benchmark):
        def measure():
            setup, relations = _setup_with_updates()
            query = q2(20)
            baseline = run_point(setup, query, "bfhm")
            overheads = []
            for refresh in generate_refresh_sets(setup.data, count=3):
                _apply(relations, refresh)
                loaded = run_point(setup, query, "bfhm")
                overheads.append(loaded)
                assert loaded.recall == 1.0
            return baseline, overheads

        baseline, loaded_points = benchmark.pedantic(
            measure, rounds=1, iterations=1
        )
        print(f"\nbaseline {baseline.time_s:.3f}s; after update sets: "
              + ", ".join(f"{p.time_s:.3f}s" for p in loaded_points))
        assert baseline.recall == 1.0
        for point in loaded_points:
            overhead = point.time_s / baseline.time_s - 1.0
            assert overhead < 0.10, (
                f"eager write-back overhead {overhead:.1%} exceeds the "
                "paper's <10% bound"
            )

    def test_updates_visible_in_results(self, benchmark):
        def measure():
            setup, relations = _setup_with_updates()
            order = {
                "orderkey": "O99999990", "custkey": "C000001",
                "orderstatus": "O", "totalprice": 0.999,
                "orderdate": "1998-01-01", "orderpriority": "1-URGENT",
                "clerk": "Clerk#1", "shippriority": 0, "comment": "rush",
            }
            item = {
                "rowkey": "L999999990", "orderkey": "O99999990",
                "partkey": "P0000001", "suppkey": "S1", "linenumber": 1,
                "quantity": 1, "extendedprice": 0.999, "discount": 0.0,
                "tax": 0.0, "returnflag": "N", "linestatus": "O",
                "shipdate": "1998-01-02", "commitdate": "1998-01-02",
                "receiptdate": "1998-01-03", "shipinstruct": "NONE",
                "shipmode": "AIR", "comment": "rush",
            }
            relations["orders"].insert(order["orderkey"], order)
            relations["lineitem"].insert(item["rowkey"], item)
            return run_point(setup, q2(1), "bfhm")

        point = benchmark.pedantic(measure, rounds=1, iterations=1)
        assert point.recall == 1.0


class TestWriteBackAmortization:
    def test_second_query_cheaper_after_eager_writeback(self, benchmark):
        """Once the first query has folded the update records back into
        the blobs, subsequent queries pay no replay cost."""
        def measure():
            setup, relations = _setup_with_updates()
            refresh = generate_refresh_sets(setup.data, count=1)[0]
            _apply(relations, refresh)
            first = run_point(setup, q2(20), "bfhm")
            second = run_point(setup, q2(20), "bfhm")
            return first, second

        first, second = benchmark.pedantic(measure, rounds=1, iterations=1)
        assert second.time_s <= first.time_s * 1.01
        assert second.recall == first.recall == 1.0
