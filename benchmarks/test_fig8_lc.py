"""Figure 8 — Q1 and Q2 on the lab-cluster (LC) profile (§7.2).

Six panels (time / bandwidth / dollars × Q1 / Q2) with ISL, BFHM, and
DRJN.  The paper omits the MapReduce baselines here ("IJLMR, PIG, and
HIVE had significantly reduced performance ... we omit specific results"),
and so do we.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import KS
from repro.bench.harness import run_series
from repro.bench.reporting import format_recall, format_series
from repro.tpch.queries import q1, q2

ALGORITHMS = ["isl", "bfhm", "drjn"]
_CACHE = {}


def _series(setup, query_factory, name):
    if name not in _CACHE:
        _CACHE[name] = run_series(setup, query_factory, KS, ALGORITHMS)
    return _CACHE[name]


def _by_k(points):
    return {point.k: point for point in points}


@pytest.mark.parametrize("query_factory,qname", [(q1, "Q1"), (q2, "Q2")],
                         ids=["Q1", "Q2"])
class TestFig8:
    def test_time_panel(self, lc_setup, benchmark, query_factory, qname):
        """Figs. 8(a)/(d): ISL and BFHM neck-and-neck (ISL best at small
        k, BFHM closing/occasionally winning as k grows); DRJN trails by
        orders of magnitude."""
        series = benchmark.pedantic(
            lambda: _series(lc_setup, query_factory, qname),
            rounds=1, iterations=1,
        )
        print()
        print(format_series(
            f"Fig 8 {qname} LC — query processing time (simulated s)",
            series, lambda p: p.time_s,
        ))
        print(format_recall(series))
        isl = _by_k(series["isl"])
        bfhm = _by_k(series["bfhm"])
        drjn = _by_k(series["drjn"])
        # DRJN's per-round full-scan map jobs dominate its latency
        for k in KS:
            assert drjn[k].time_s > 10 * max(isl[k].time_s, bfhm[k].time_s)
        # ISL leads at the smallest k ...
        assert isl[KS[0]].time_s <= bfhm[KS[0]].time_s * 1.05
        # ... and the two stay within a small factor across the sweep
        for k in KS:
            ratio = bfhm[k].time_s / isl[k].time_s
            assert 0.4 < ratio < 2.5, f"k={k}: curves should interleave"
        # BFHM closes the gap (or wins) somewhere in the sweep
        assert any(bfhm[k].time_s < isl[k].time_s for k in KS[1:])

    def test_bandwidth_panel(self, lc_setup, benchmark, query_factory, qname):
        """Figs. 8(b)/(e): DRJN's server-side filter keeps its *shipped*
        bytes to a sliver of what its pull scans *read* — the §7.1
        optimization that makes DRJN bandwidth-competitive at paper scale.

        Known scale artifact (see EXPERIMENTS.md): in the paper DRJN's
        fixed-size matrix rows undercut BFHM's megabyte blobs, so DRJN wins
        the Q1 panel outright; at miniature scale both structures are tiny
        and DRJN's temp-table traffic dominates instead.  The invariant
        that survives scaling — asserted here — is the read-vs-ship gap
        and DRJN's advantage eroding on the more demanding Q2.
        """
        series = benchmark.pedantic(
            lambda: _series(lc_setup, query_factory, qname),
            rounds=1, iterations=1,
        )
        print()
        print(format_series(
            f"Fig 8 {qname} LC — network bandwidth (bytes)",
            series, lambda p: p.network_bytes,
        ))
        drjn = _by_k(series["drjn"])
        isl = _by_k(series["isl"])
        for k in KS:
            # the server-side filter payoff: bytes shipped are a tiny
            # fraction of the ~40-byte cells the pull jobs read
            read_bytes_floor = drjn[k].kv_reads * 20
            assert drjn[k].network_bytes < read_bytes_floor / 2, f"k={k}"
        # DRJN ships less than ISL does per KV it returns (filtering works)
        assert (drjn[KS[0]].network_bytes / max(1, drjn[KS[0]].kv_reads)
                < isl[KS[0]].network_bytes / max(1, isl[KS[0]].kv_reads))

    def test_drjn_advantage_shrinks_on_q2(self, lc_setup, benchmark,
                                          query_factory, qname):
        """§7.2: "For the more demanding Q2 however, as k increases, its
        improvement over BFHM becomes much smaller" — DRJN's bandwidth
        relative to BFHM degrades from Q1 to Q2."""
        if qname != "Q1":
            pytest.skip("comparison computed once, on the Q1 parametrization")
        series_q1 = benchmark.pedantic(
            lambda: _series(lc_setup, q1, "Q1"), rounds=1, iterations=1
        )
        series_q2 = _series(lc_setup, q2, "Q2")
        k = KS[-1]
        ratio_q1 = (_by_k(series_q1["drjn"])[k].network_bytes
                    / max(1, _by_k(series_q1["bfhm"])[k].network_bytes))
        ratio_q2 = (_by_k(series_q2["drjn"])[k].network_bytes
                    / max(1, _by_k(series_q2["bfhm"])[k].network_bytes))
        assert ratio_q2 > ratio_q1 * 0.9  # Q2 is no kinder to DRJN

    def test_dollar_panel(self, lc_setup, benchmark, query_factory, qname):
        """Figs. 8(c)/(f): BFHM up to ~5 orders cheaper than DRJN; DRJN is
        the worst of the three by far."""
        series = benchmark.pedantic(
            lambda: _series(lc_setup, query_factory, qname),
            rounds=1, iterations=1,
        )
        print()
        print(format_series(
            f"Fig 8 {qname} LC — dollar cost (KV read units)",
            series, lambda p: p.kv_reads,
        ))
        isl = _by_k(series["isl"])
        bfhm = _by_k(series["bfhm"])
        drjn = _by_k(series["drjn"])
        for k in KS:
            assert bfhm[k].kv_reads < isl[k].kv_reads
            assert drjn[k].kv_reads > 100 * bfhm[k].kv_reads, (
                f"k={k}: DRJN pull scans must dwarf BFHM's surgical reads"
            )

    def test_recall_is_perfect_everywhere(self, lc_setup, benchmark,
                                          query_factory, qname):
        series = benchmark.pedantic(
            lambda: _series(lc_setup, query_factory, qname),
            rounds=1, iterations=1,
        )
        for name, points in series.items():
            for point in points:
                assert point.recall == 1.0, (name, point.k)


class TestQ1VsQ2:
    def test_q2_costs_more_than_q1(self, lc_setup, benchmark):
        """§7.2: Q2's skewed scores force every index-based algorithm to
        reach deeper, raising all three metrics."""
        def measure():
            return (_series(lc_setup, q1, "Q1"), _series(lc_setup, q2, "Q2"))

        series_q1, series_q2 = benchmark.pedantic(measure, rounds=1, iterations=1)
        for name in ("isl", "bfhm"):
            q1_cost = _by_k(series_q1[name])[KS[-1]].kv_reads
            q2_cost = _by_k(series_q2[name])[KS[-1]].kv_reads
            assert q2_cost > q1_cost, name
