"""Process-parallel index builds: wall-clock speedup, simulated identity.

The process-pool backend (``Platform(..., parallelism="process")``) exists
to buy *wall-clock* time on multi-core machines: index-build map and
reduce waves — BFHM's per-bucket Bloom-filter construction and Golomb
blob encoding are the CPU-heavy case — run in spawn-based worker
processes instead of under the GIL.  This bench times the same builds
twice over identically-seeded platforms:

* ``serial``  — the thread backend on one server, where build waves run
  inline on the calling thread (the seed behaviour), and
* ``process`` — the process backend at ``WORKERS`` workers.

Two invariants are asserted *unconditionally*:

* every build's **simulated** metric delta (the fig7/8 clock, bytes, KV
  reads, all counters) is bit-identical across backends — the fold-in-
  task-order discipline makes simulated cost a pure function of store
  state + task list; and
* wall-clock and simulated numbers never mix: the report's headline unit
  is wall-clock seconds, with the (backend-invariant) simulated build
  time carried separately as ``sim_seconds``.

The ≥``MIN_SPEEDUP``× wall-clock speedup target is asserted **only on
machines with ≥4 cores** — on fewer cores process parallelism cannot win
and the honest numbers are recorded without judgement (the committed
baseline carries ``meta.cores`` so readers can tell which regime it was
measured in).  The shared pool is warmed (workers spawned) before
timing: spawn cost is paid once per interpreter, not per build, so
charging it to the first build would misprice the steady state.

Run through ``make bench-parallel`` the results are written to a
candidate JSON (via ``BENCH_PARALLEL_OUT``) and diffed against the
committed ``BENCH_parallel.json`` baseline, warning — not failing — on
regression (wall-clock numbers are machine-dependent by nature).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.bench.harness import build_setup
from repro.cluster.costmodel import EC2_PROFILE
from repro.cluster.procpool import shared_process_pool
from repro.common.registry import fn_ref
from repro.tpch.queries import q1

SCALE = 0.2
SEED = 42
WORKERS = 4
BUILDS = ("bfhm", "isl", "ijlmr")

#: wall-clock speedup target at WORKERS workers — only meaningful (and
#: only asserted) when the machine actually has that much parallelism
MIN_SPEEDUP = 2.0
MIN_CORES_FOR_TARGET = 4


def _timed_build(parallelism: str, algorithm: str):
    """Build one index from scratch; return (wall seconds, sim delta)."""
    setup = build_setup(
        EC2_PROFILE,
        micro_scale=SCALE,
        seed=SEED,
        parallelism=parallelism,
        process_workers=WORKERS if parallelism == "process" else None,
    )
    metrics = setup.platform.metrics
    before = metrics.snapshot()
    start = time.perf_counter()
    setup.engine.algorithm(algorithm).prepare(q1(1))
    wall = time.perf_counter() - start
    after = metrics.snapshot()
    sim = {
        "sim_seconds": after.sim_time_s - before.sim_time_s,
        "network_bytes": after.network_bytes - before.network_bytes,
        "kv_reads": after.kv_reads - before.kv_reads,
        "counters": dict(after.counters),
    }
    return wall, sim


@pytest.fixture(scope="module")
def results():
    # spawn the workers once up front so no single build pays startup cost
    pool = shared_process_pool()
    pool.configure(WORKERS)
    pool.run([fn_ref("mr.reduce_partition", {"reduce": None, "pairs": []})])
    workloads = {}
    for algorithm in BUILDS:
        serial_wall, serial_sim = _timed_build("thread", algorithm)
        process_wall, process_sim = _timed_build("process", algorithm)
        workloads[f"{algorithm}_build"] = {
            "serial_wall": serial_wall,
            "process_wall": process_wall,
            "serial_sim": serial_sim,
            "process_sim": process_sim,
            "speedup": serial_wall / process_wall,
        }
    total_serial = sum(cell["serial_wall"] for cell in workloads.values())
    total_process = sum(cell["process_wall"] for cell in workloads.values())
    return {
        "workloads": workloads,
        "aggregate_speedup": total_serial / total_process,
    }


class TestParallelBuildBench:
    def test_simulated_metrics_identical(self, results):
        """The backend may only change wall-clock: every simulated number
        (fig7/8 clock, bytes, reads, counters) matches bit-for-bit."""
        for name, cell in results["workloads"].items():
            assert cell["serial_sim"] == cell["process_sim"], name

    def test_wall_and_sim_clocks_differ(self, results):
        """Sanity guard against ever conflating the two clocks: a build's
        wall-clock and simulated durations are different quantities (the
        sim clock prices RPCs/disk the wall clock never waits on)."""
        for name, cell in results["workloads"].items():
            assert cell["serial_wall"] != cell["serial_sim"]["sim_seconds"], name

    @pytest.mark.skipif(
        (os.cpu_count() or 1) < MIN_CORES_FOR_TARGET,
        reason=f"wall-clock speedup target needs >= {MIN_CORES_FOR_TARGET} cores",
    )
    def test_wallclock_speedup_on_multicore(self, results):
        """≥2× aggregate wall-clock speedup at 4 workers — asserted only
        where the hardware can deliver it."""
        assert results["aggregate_speedup"] >= MIN_SPEEDUP, {
            name: round(cell["speedup"], 3)
            for name, cell in results["workloads"].items()
        }

    def test_report_written(self, results):
        """Write the JSON report when BENCH_PARALLEL_OUT names a path."""
        out_path = os.environ.get("BENCH_PARALLEL_OUT")
        if not out_path:
            pytest.skip("BENCH_PARALLEL_OUT not set; not writing a report")
        report = {
            "meta": {
                "scale": SCALE,
                "seed": SEED,
                "workers": WORKERS,
                "cores": os.cpu_count(),
                "unit": "wall-clock seconds",
                "speedup": round(results["aggregate_speedup"], 3),
            },
            "workloads": {
                name: {
                    "seconds": round(cell["process_wall"], 6),
                    "serial_seconds": round(cell["serial_wall"], 6),
                    "speedup": round(cell["speedup"], 3),
                    "sim_seconds": round(cell["serial_sim"]["sim_seconds"], 6),
                    "kv_reads": int(cell["serial_sim"]["kv_reads"]),
                }
                for name, cell in results["workloads"].items()
            },
        }
        with open(out_path, "w") as fh:
            json.dump(report, fh, indent=1, sort_keys=True)
            fh.write("\n")
