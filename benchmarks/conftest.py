"""Benchmark fixtures: one loaded platform per evaluation environment.

``ec2`` mirrors the paper's 1+8 m1.large cluster at scale factor 10 and
``lc`` the 5-node lab cluster at scale factor 500 (§7.1), using the
miniature TPC-H generator plus the cost model's time dilation.  Algorithm
configurations follow §7.1: ISL batches of 1% (EC2) / 0.2% (LC) of the
relation, BFHM with 100 buckets.

All index builds happen once per session; each benchmark measures query
executions only, mirroring the paper's split between Fig. 9 (indexing) and
Figs. 7–8 (querying).
"""

from __future__ import annotations

import pytest

from repro.bench.harness import ExperimentSetup, build_setup
from repro.cluster.costmodel import EC2_PROFILE, LC_PROFILE
from repro.tpch.queries import q1, q2

#: k sweep of Figs. 7 and 8
KS = [1, 10, 20, 50, 100]
BENCH_SEED = 42

EC2_MICRO_SCALE = 0.5
LC_MICRO_SCALE = 2.0


def _prepare(setup: ExperimentSetup, algorithms: "list[str]") -> ExperimentSetup:
    for name in algorithms:
        setup.engine.algorithm(name).prepare(q1(1))
        setup.engine.algorithm(name).prepare(q2(1))
    return setup


@pytest.fixture(scope="session")
def ec2_setup() -> ExperimentSetup:
    setup = build_setup(EC2_PROFILE, micro_scale=EC2_MICRO_SCALE, seed=BENCH_SEED)
    return _prepare(setup, ["ijlmr", "isl", "bfhm"])


@pytest.fixture(scope="session")
def lc_setup() -> ExperimentSetup:
    setup = build_setup(
        LC_PROFILE,
        micro_scale=LC_MICRO_SCALE,
        seed=BENCH_SEED,
        isl={"batch_fraction": 0.002},
        bfhm={"num_buckets": 100},
    )
    return _prepare(setup, ["isl", "bfhm", "drjn"])
