"""Wall-clock micro-benchmarks of the storage read path.

Unlike the figure benchmarks (which measure *simulated* cost), these time
the real elapsed seconds of the store's hot operations — index-style bulk
build, point gets, ``limit``-ed scans, and full scans — over a table big
enough that the lazy merge scan and the memtable row index matter.

Run through ``make bench-wallclock`` the results are written to a candidate
JSON (via ``BENCH_OUT``) and diffed against the committed
``BENCH_read_path.json`` baseline, warning — not failing — on regression.
Under plain pytest nothing is written; the tests only assert the structural
speed relationships that the streaming read path guarantees.
"""

from __future__ import annotations

import json
import os
import random
import time

import pytest

from repro.cluster.costmodel import EC2_PROFILE
from repro.platform import Platform
from repro.store.client import Get, Put, Scan

#: rows in the micro-benchmark table (N >> limit so laziness dominates)
N_ROWS = 20_000
N_POINT_GETS = 2_000
N_LIMITED_SCANS = 200
SCAN_LIMIT = 10
RNG_SEED = 1234


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _row_key(i: int) -> str:
    return f"r{i:07d}"


@pytest.fixture(scope="module")
def results() -> "dict[str, dict[str, float]]":
    """Run every micro-workload once and package (seconds, ops, per-op µs)."""
    platform = Platform(EC2_PROFILE)
    htable = platform.store.create_table("bench", {"d"})
    out: dict[str, dict[str, float]] = {}

    def record(name: str, seconds: float, ops: int) -> None:
        out[name] = {
            "seconds": round(seconds, 6),
            "ops": ops,
            "per_op_us": round(seconds / max(1, ops) * 1e6, 3),
        }

    puts = [
        Put(_row_key(i)).add("d", "q", b"x" * 32).add("d", "score", b"%08d" % i)
        for i in range(N_ROWS)
    ]
    record("build", _timed(lambda: (htable.put_batch(puts), htable.flush())), N_ROWS)

    rng = random.Random(RNG_SEED)
    gets = [Get(_row_key(rng.randrange(N_ROWS))) for _ in range(N_POINT_GETS)]
    # half the rows re-written so point gets hit memtable + SSTable merges
    htable.put_batch(
        [Put(_row_key(i)).add("d", "q", b"y" * 32) for i in range(0, N_ROWS, 2)]
    )
    record(
        "point_get",
        _timed(lambda: [htable.get(get) for get in gets]),
        N_POINT_GETS,
    )

    starts = [_row_key(rng.randrange(N_ROWS)) for _ in range(N_LIMITED_SCANS)]
    record(
        "limited_scan",
        _timed(
            lambda: [
                list(htable.scan(Scan(start_row=start, limit=SCAN_LIMIT)))
                for start in starts
            ]
        ),
        N_LIMITED_SCANS,
    )

    record("full_scan", _timed(lambda: htable.scan_all()), 1)
    return out


class TestWallClock:
    def test_limited_scan_is_lazy(self, results):
        """A limit=10 scan of a 20k-row table must be far cheaper than a
        full scan — the whole point of the streaming merge."""
        limited = results["limited_scan"]["per_op_us"]
        full = results["full_scan"]["per_op_us"]
        assert limited * 3 < full, results

    def test_point_get_is_indexed(self, results):
        """A point get must not cost like sweeping the table."""
        get = results["point_get"]["per_op_us"]
        full = results["full_scan"]["per_op_us"]
        assert get * 10 < full, results

    def test_report_written(self, results):
        """Write the JSON report when BENCH_OUT names a path."""
        out_path = os.environ.get("BENCH_OUT")
        if not out_path:
            pytest.skip("BENCH_OUT not set; not writing a report")
        report = {
            "meta": {
                "n_rows": N_ROWS,
                "point_gets": N_POINT_GETS,
                "limited_scans": N_LIMITED_SCANS,
                "scan_limit": SCAN_LIMIT,
            },
            "workloads": results,
        }
        with open(out_path, "w") as fh:
            json.dump(report, fh, indent=1, sort_keys=True)
            fh.write("\n")
