"""Ablations of the design choices DESIGN.md calls out.

Each test isolates one mechanism of the paper's design and shows the
trade-off it buys:

* ISL scanner batching (§4.2.3): latency vs overshoot;
* BFHM histogram resolution (§7.1's 100-vs-1000-bucket configurations);
* Golomb compression of the hybrid filter (§5.1: "single hash function
  Bloom filters can grow very large in space and are thus impractical
  otherwise");
* α false-positive compensation (§5.3);
* conservative vs aggressive phase-1 termination (DESIGN.md §4).
"""

from __future__ import annotations

import pytest

from repro.bench.harness import build_setup, run_point
from repro.cluster.costmodel import EC2_PROFILE
from repro.core.bfhm.algorithm import BFHMRankJoin, TerminationPolicy
from repro.core.isl import ISLRankJoin
from repro.sketches.hybrid import HybridBloomFilter
from repro.tpch.queries import q1, q2


class TestISLBatching:
    def test_batch_size_tradeoff(self, benchmark):
        """Bigger batches amortize RPC latency but overshoot the
        termination point, paying bandwidth and dollars (§4.2.3)."""
        def measure():
            rows = {}
            for batch_rows in (4, 32, 256):
                setup = build_setup(EC2_PROFILE, micro_scale=0.5, seed=42)
                algorithm = ISLRankJoin(setup.platform, batch_rows=batch_rows)
                query = q2(20)
                algorithm.prepare(query)
                result = algorithm.execute(query)
                rows[batch_rows] = (
                    result.details["batches"],
                    result.metrics.kv_reads,
                    result.metrics.network_bytes,
                )
            return rows

        rows = benchmark.pedantic(measure, rounds=1, iterations=1)
        print("\nISL batch sweep (batches, KV reads, bytes):", rows)
        batches = [rows[b][0] for b in (4, 32, 256)]
        kv_reads = [rows[b][1] for b in (4, 32, 256)]
        assert batches[0] > batches[1] > batches[2]  # fewer rounds
        assert kv_reads[0] <= kv_reads[1] <= kv_reads[2]  # more overshoot


class TestBFHMBucketCount:
    def test_finer_histograms_fetch_fewer_tuples(self, benchmark):
        """§7.1 ran 100 and 1000 buckets on EC2: finer buckets bound the
        candidate set more tightly (fewer reverse-mapping fetches) at the
        price of more bucket-row round trips."""
        def measure():
            rows = {}
            for num_buckets in (10, 100, 400):
                setup = build_setup(EC2_PROFILE, micro_scale=0.5, seed=42)
                algorithm = BFHMRankJoin(setup.platform, num_buckets=num_buckets)
                query = q2(20)
                algorithm.prepare(query)
                result = algorithm.execute(query)
                rows[num_buckets] = (
                    result.details["buckets_fetched"],
                    result.details["reverse_rows_fetched"],
                    result.recall_against(setup.ground_truth(query, 20)),
                )
            return rows

        rows = benchmark.pedantic(measure, rounds=1, iterations=1)
        print("\nBFHM bucket sweep (buckets fetched, reverse rows, recall):",
              rows)
        assert all(recall == 1.0 for _, _, recall in rows.values())
        # coarse buckets over-fetch (wide score ranges admit losers);
        # over-fine buckets re-inflate fetches (many tiny bucket pairs must
        # be fetched to accumulate k estimated tuples) — the resolution
        # knob is U-shaped, which is why §7.1 tunes it per environment
        assert rows[10][1] > rows[100][1]
        fetched = [rows[b][0] for b in (10, 100, 400)]
        assert fetched[0] < fetched[1] < fetched[2]  # round trips grow


class TestGolombCompression:
    def test_blob_vs_raw_bitmap(self, benchmark):
        """§5.1: the compression "is an integral part of our data
        structure"; without it, a single-hash filter's bitmap is
        impractically large."""
        def measure():
            hybrid = HybridBloomFilter(1 << 20)  # 1 Mbit, 128 KiB raw
            for i in range(500):
                hybrid.insert(f"join-value-{i}")
            blob = hybrid.to_blob()
            return blob.serialized_size(), hybrid.bit_count // 8

        blob_bytes, raw_bytes = benchmark.pedantic(measure, rounds=1,
                                                   iterations=1)
        print(f"\nblob {blob_bytes:,} B vs raw bitmap {raw_bytes:,} B "
              f"({raw_bytes / blob_bytes:.0f}x saving)")
        assert blob_bytes * 20 < raw_bytes


class TestAlphaCompensation:
    def test_alpha_corrects_overestimation(self, benchmark):
        """§5.3: crowded filters overestimate join sizes via false-positive
        counter collisions; α pulls the estimate back toward the truth."""
        def measure():
            left = HybridBloomFilter(512)
            right = HybridBloomFilter(512)
            true_pairs = 0
            for i in range(180):
                left.insert(f"L{i}")
                right.insert(f"R{i}")
            for i in range(20):
                left.insert(f"common-{i}")
                right.insert(f"common-{i}")
                true_pairs += 1
            common = left.intersect_positions(right)
            raw = sum(left.counters[p] * right.counters[p] for p in common)
            compensated = left.join_cardinality(right)
            return raw, compensated, true_pairs

        raw, compensated, truth = benchmark.pedantic(measure, rounds=1,
                                                     iterations=1)
        print(f"\ntrue join pairs {truth}; raw estimate {raw}; "
              f"alpha-compensated {compensated:.1f}")
        assert raw > truth  # collisions inflate the raw counter product
        assert abs(compensated - truth) < abs(raw - truth)


class TestTerminationPolicies:
    def test_aggressive_terminates_no_later(self, benchmark):
        """The paper's narrative bound stops phase 1 earlier (or equally
        early); the §5.3 repair loop keeps recall at 100% either way."""
        def measure():
            rows = {}
            for policy in TerminationPolicy:
                setup = build_setup(EC2_PROFILE, micro_scale=0.5, seed=42)
                algorithm = BFHMRankJoin(setup.platform, policy=policy)
                query = q2(20)
                algorithm.prepare(query)
                result = algorithm.execute(query)
                rows[policy.value] = (
                    result.details["buckets_fetched"],
                    result.details["repair_rounds"],
                    result.recall_against(setup.ground_truth(query, 20)),
                )
            return rows

        rows = benchmark.pedantic(measure, rounds=1, iterations=1)
        print("\ntermination policies (buckets, repair rounds, recall):", rows)
        assert rows["aggressive"][2] == rows["conservative"][2] == 1.0
        assert rows["aggressive"][0] <= rows["conservative"][0] + 2


class TestMultiWayScaling:
    def test_three_way_isl(self, benchmark):
        """§3's n-way extension: a 3-way coordinator join stays far below
        full-scan cost (exercised end-to-end in the test suite; here we
        record its price next to the 2-way runs)."""
        from repro.core.isl_multi import MultiRankJoinQuery, MultiWayISLRankJoin
        from repro.relational.binding import RelationBinding
        from repro.relational.multiway import naive_rank_join_multi
        from repro.relational.binding import load_relation
        from repro.common.serialization import encode_float, encode_str
        from repro.store.client import Put
        import random

        def measure():
            setup = build_setup(EC2_PROFILE, micro_scale=0.05, seed=9)
            rng = random.Random(9)
            for day in ("d1", "d2", "d3"):
                htable = setup.platform.store.create_table(day, {"d"})
                for i in range(300):
                    htable.put(
                        Put(f"{day}-{i:05d}")
                        .add("d", "jv", encode_str(f"v{rng.randint(0, 99):03d}"))
                        .add("d", "sc", encode_float(round(rng.random(), 6)))
                    )
                htable.flush()
            inputs = [
                RelationBinding(day, join_column="jv", score_column="sc")
                for day in ("d1", "d2", "d3")
            ]
            query = MultiRankJoinQuery.of(inputs, "sum", 10)
            algorithm = MultiWayISLRankJoin(setup.platform)
            result = algorithm.execute(query)
            relations = [load_relation(setup.platform.store, b) for b in inputs]
            truth = naive_rank_join_multi(relations, query.function, 10)
            return result, result.recall_against(truth)

        result, recall = benchmark.pedantic(measure, rounds=1, iterations=1)
        print(f"\n3-way ISL: {result.metrics.kv_reads} KV reads, "
              f"{result.metrics.sim_time_s:.2f}s, recall {recall}")
        assert recall == 1.0
        assert result.metrics.kv_reads < 900  # well under the 3x300 rows
