"""§7.2's in-text index footprint report.

Disk space per index (BFHM including reverse mappings; ISL and IJLMR
identical in content hence size; DRJN tiny and bounded by its matrix
dimensions) and peak reducer memory during index builds (BFHM ≫ DRJN ≫
ISL/IJLMR's "negligible").
"""

from __future__ import annotations

import pytest

from repro.bench.harness import build_setup
from repro.bench.reporting import format_table
from repro.cluster.costmodel import LC_PROFILE
from repro.tpch.queries import q1, q2

INDEXED = ["ijlmr", "isl", "bfhm", "drjn"]


def _reports(setup):
    reports = {}
    for name in INDEXED:
        algorithm = setup.engine.algorithm(name)
        built = []
        built += algorithm.prepare(q1(1))
        built += algorithm.prepare(q2(1))
        reports[name] = built
    return reports


class TestIndexFootprints:
    def test_disk_sizes(self, benchmark):
        def measure():
            setup = build_setup(LC_PROFILE, micro_scale=1.0, seed=7)
            base = {
                name: setup.platform.store.backing(name).disk_size
                for name in ("part", "orders", "lineitem")
            }
            return base, _reports(setup)

        base, reports = benchmark.pedantic(measure, rounds=1, iterations=1)
        sizes = {
            name: sum(r.index_bytes for r in built)
            for name, built in reports.items()
        }
        print()
        print(format_table(
            "Index disk footprint (bytes; all Q1+Q2 relations)",
            ["bytes"], INDEXED,
            [[f"{sizes[name]:,}" for name in INDEXED]],
        ))
        print(f"base tables: {sum(base.values()):,} bytes")

        # ISL and IJLMR store the same (rowkey, join, score) content
        assert sizes["isl"] == pytest.approx(sizes["ijlmr"], rel=0.25)
        # BFHM adds blobs + reverse mappings on top of that content
        assert sizes["bfhm"] > sizes["isl"]
        # DRJN's matrix is smaller than any inverted list — and, unlike
        # them, bounded: its cell count is capped by buckets x partitions,
        # so at paper scale the gap becomes orders of magnitude (§7.2)
        assert sizes["drjn"] < sizes["isl"]
        from repro.baselines.drjn import (
            DEFAULT_JOIN_PARTITIONS,
            DEFAULT_SCORE_BUCKETS,
        )
        from repro.core.indexes import DRJN_TABLE

        def measure_cells():
            setup = build_setup(LC_PROFILE, micro_scale=1.0, seed=7)
            _reports(setup)
            return setup.platform.store.backing(DRJN_TABLE).raw_cell_count()

        cap = 4 * (DEFAULT_SCORE_BUCKETS * DEFAULT_JOIN_PARTITIONS
                   + DEFAULT_JOIN_PARTITIONS)
        assert measure_cells() <= cap
        # every index undercuts the (payload-heavy) base tables
        assert all(size < sum(base.values()) for size in sizes.values())

    def test_reducer_memory(self, benchmark):
        """BFHM's reducers hold whole buckets (GB at paper scale); ISL and
        IJLMR builds are map-only (no reducer state at all)."""
        def measure():
            setup = build_setup(LC_PROFILE, micro_scale=1.0, seed=7)
            return _reports(setup)

        reports = benchmark.pedantic(measure, rounds=1, iterations=1)
        peaks = {
            name: max((r.reducer_peak_bytes for r in built), default=0)
            for name, built in reports.items()
        }
        print()
        print(format_table(
            "Peak reducer memory during index builds (bytes)",
            ["bytes"], INDEXED,
            [[f"{peaks[name]:,}" for name in INDEXED]],
        ))
        assert peaks["ijlmr"] == 0  # map-only build
        assert peaks["isl"] == 0  # map-only build
        assert peaks["bfhm"] > peaks["drjn"] > 0
