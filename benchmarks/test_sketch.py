"""Wall-clock micro-benchmarks of the BFHM sketch hot path.

Times the real elapsed seconds of Golomb blob encode, blob decode, and
filter membership/intersection over §7.1-sized bucket filters — the
coordinator CPU work that dominates BFHM index builds and phase-1
estimation.  The seed bit-at-a-time coder is timed alongside (from
``tests/unit/reference_bitio.py``) so the word-level coder's speedup is
asserted against the frozen baseline on every run, not just recorded once.

Run through ``make bench-sketch`` the results are written to a candidate
JSON (via ``BENCH_SKETCH_OUT``) and diffed against the committed
``BENCH_sketch.json`` baseline, warning — not failing — on regression.
"""

from __future__ import annotations

import json
import os
import random
import time

import pytest

from repro.core.bfhm.bucket import decode_blob, encode_blob
from repro.sketches.golomb import (
    decode_sorted_set,
    encode_sorted_set,
    golomb_decode,
    golomb_encode,
)
from repro.sketches.hybrid import HybridBloomFilter
from tests.unit.reference_bitio import (
    reference_golomb_decode,
    reference_golomb_encode,
)

#: §7.1-flavoured bucket filter: heavily populated bucket, 5% FP sizing
M_BITS = 200_000
ITEMS_PER_FILTER = 4_000
N_FILTERS = 4
ENCODE_REPEATS = 5
DECODE_REPEATS = 5
MEMBERSHIP_PROBES = 50_000
#: regression floors asserted in tier-1.  Deliberately below the measured
#: speedups (coder ~3.9x, blob path ~3.2x at merge time, recorded in
#: BENCH_sketch.json meta) so noisy CI runners or interpreter-performance
#: shifts cannot hard-fail the suite; a drop below these floors means the
#: word-level coder has genuinely regressed toward bit-at-a-time cost.
#: The precise trajectory is tracked warn-only by `make bench-sketch`.
MIN_CODER_SPEEDUP = 2.0
MIN_BLOB_SPEEDUP = 1.5
RNG_SEED = 1234


#: best-of-N rounds per workload — the minimum is the least noise-inflated
#: estimate of intrinsic cost (standard micro-benchmark practice)
TIMING_ROUNDS = 5


def _timed(fn) -> float:
    best = float("inf")
    for _ in range(TIMING_ROUNDS):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _seed_to_blob(bucket_filter: HybridBloomFilter):
    """The seed ``HybridBloomFilter.to_blob`` verbatim, on the seed coder."""
    import math

    from repro.sketches.golomb import optimal_golomb_parameter

    positions = sorted(bucket_filter.counters)
    gaps = []
    previous = -1
    for position in positions:
        gaps.append(position - previous - 1)
        previous = position
    density = len(positions) / bucket_filter.bit_count
    pos_param = optimal_golomb_parameter(density)
    pos_payload, pos_bits = reference_golomb_encode(gaps, pos_param)
    counts = [bucket_filter.counters[p] - 1 for p in positions]
    mean = (sum(counts) / len(counts)) if counts else 0.0
    count_param = optimal_golomb_parameter(1.0 / (1.0 + mean))
    count_payload, count_bits = reference_golomb_encode(counts, count_param)
    return (pos_payload, pos_bits, pos_param, count_payload, count_bits,
            count_param)


def _seed_from_blob(blob) -> HybridBloomFilter:
    """The seed ``HybridBloomFilter.from_blob`` verbatim, on the seed coder."""
    gaps = reference_golomb_decode(
        blob.positions_payload, blob.positions_bits,
        blob.entry_count, blob.positions_parameter,
    )
    positions = []
    previous = -1
    for gap in gaps:
        previous = previous + gap + 1
        positions.append(previous)
    counts = reference_golomb_decode(
        blob.counters_payload, blob.counters_bits,
        blob.entry_count, blob.counters_parameter,
    )
    instance = HybridBloomFilter(blob.bit_count)
    instance.counters = {
        position: count + 1 for position, count in zip(positions, counts)
    }
    instance.item_count = blob.item_count
    return instance


def _build_filter(seed: int) -> HybridBloomFilter:
    rng = random.Random(seed)
    bucket_filter = HybridBloomFilter(M_BITS)
    for _ in range(ITEMS_PER_FILTER):
        bucket_filter.insert(f"jv{rng.randrange(ITEMS_PER_FILTER * 4):08d}")
    return bucket_filter


@pytest.fixture(scope="module")
def results() -> "dict[str, dict[str, float]]":
    """Run every micro-workload once; (seconds, ops, per-op µs) each."""
    filters = [_build_filter(seed) for seed in range(N_FILTERS)]
    out: dict[str, dict[str, float]] = {}

    def record(name: str, seconds: float, ops: int) -> None:
        out[name] = {
            "seconds": round(seconds, 6),
            "ops": ops,
            "per_op_us": round(seconds / max(1, ops) * 1e6, 3),
        }

    # ---- blob encode / decode (the production word-level coder) ----
    blobs: list[bytes] = []

    def encode_all() -> None:
        blobs.clear()
        for _ in range(ENCODE_REPEATS):
            blobs[:] = [encode_blob(f.to_blob()) for f in filters]

    record("encode", _timed(encode_all), ENCODE_REPEATS * N_FILTERS)

    record(
        "decode",
        _timed(
            lambda: [
                HybridBloomFilter.from_blob(decode_blob(blob))
                for _ in range(DECODE_REPEATS)
                for blob in blobs
            ]
        ),
        DECODE_REPEATS * N_FILTERS,
    )

    # ---- membership: single-hash probes + bucket-pair intersection ----
    rng = random.Random(RNG_SEED)
    probes = [f"jv{rng.randrange(ITEMS_PER_FILTER * 8):08d}"
              for _ in range(MEMBERSHIP_PROBES)]

    def membership() -> None:
        bucket_filter = filters[0]
        for probe in probes:
            probe in bucket_filter  # noqa: B015 - timing the probe itself
        filters[0].intersect_positions(filters[1])
        filters[0].join_cardinality(filters[1])

    record("membership", _timed(membership), MEMBERSHIP_PROBES)

    # ---- raw coder boundary: the streams of each blob, no blob overhead ----
    hybrid_blobs = [f.to_blob() for f in filters]
    stream_inputs = []  # (positions, counts, blob) per filter
    for bucket_filter, blob in zip(filters, hybrid_blobs):
        positions = sorted(bucket_filter.counters)
        counts = [bucket_filter.counters[p] - 1 for p in positions]
        stream_inputs.append((positions, counts, blob))

    def coder_encode() -> None:
        for positions, counts, blob in stream_inputs:
            encode_sorted_set(positions, M_BITS)
            golomb_encode(counts, blob.counters_parameter)

    record("golomb_encode", _timed(coder_encode), N_FILTERS)

    def coder_decode() -> None:
        for _, _, blob in stream_inputs:
            decode_sorted_set(
                blob.positions_payload, blob.positions_bits,
                blob.entry_count, blob.positions_parameter,
            )
            golomb_decode(
                blob.counters_payload, blob.counters_bits,
                blob.entry_count, blob.counters_parameter,
            )

    record("golomb_decode", _timed(coder_decode), N_FILTERS)

    # ---- the seed coder on identical inputs ----
    # _seed_to_blob/_seed_from_blob mirror the seed hybrid.py end to end
    # (gap loop, accumulation loop, dict comprehension) so those pairs are
    # the same full-path workloads as "encode"/"decode" above; the
    # seed_golomb_* pair matches the raw coder boundary
    def seed_encode_all() -> None:
        for bucket_filter in filters:
            _seed_to_blob(bucket_filter)

    record("seed_encode", _timed(seed_encode_all), N_FILTERS)

    def seed_decode_all() -> None:
        for blob in hybrid_blobs:
            _seed_from_blob(blob)

    record("seed_decode", _timed(seed_decode_all), N_FILTERS)

    def seed_coder_encode() -> None:
        for positions, counts, blob in stream_inputs:
            gaps, previous = [], -1
            for position in positions:
                gaps.append(position - previous - 1)
                previous = position
            reference_golomb_encode(gaps, blob.positions_parameter)
            reference_golomb_encode(counts, blob.counters_parameter)

    record("seed_golomb_encode", _timed(seed_coder_encode), N_FILTERS)

    def seed_coder_decode() -> None:
        for _, _, blob in stream_inputs:
            reference_golomb_decode(
                blob.positions_payload, blob.positions_bits,
                blob.entry_count, blob.positions_parameter,
            )
            reference_golomb_decode(
                blob.counters_payload, blob.counters_bits,
                blob.entry_count, blob.counters_parameter,
            )

    record("seed_golomb_decode", _timed(seed_coder_decode), N_FILTERS)

    return out


def _coder_speedup(results) -> float:
    fast = (
        results["golomb_encode"]["per_op_us"]
        + results["golomb_decode"]["per_op_us"]
    )
    seed = (
        results["seed_golomb_encode"]["per_op_us"]
        + results["seed_golomb_decode"]["per_op_us"]
    )
    return seed / fast


def _blob_speedup(results) -> float:
    fast = results["encode"]["per_op_us"] + results["decode"]["per_op_us"]
    seed = (
        results["seed_encode"]["per_op_us"] + results["seed_decode"]["per_op_us"]
    )
    return seed / fast


class TestSketchBench:
    def test_round_trip_correct(self):
        """The timed path must actually be lossless."""
        bucket_filter = _build_filter(99)
        restored = HybridBloomFilter.from_blob(
            decode_blob(encode_blob(bucket_filter.to_blob()))
        )
        assert restored.counters == bucket_filter.counters
        assert restored.item_count == bucket_filter.item_count

    def test_word_level_coder_beats_seed_coder(self, results):
        """Combined encode+decode must stay >= MIN_CODER_SPEEDUP x the seed
        bit-at-a-time coder on identical inputs."""
        speedup = _coder_speedup(results)
        assert speedup >= MIN_CODER_SPEEDUP, (
            f"coder encode+decode speedup {speedup:.2f}x below the "
            f"{MIN_CODER_SPEEDUP}x floor ({results})"
        )

    def test_full_blob_path_beats_seed(self, results):
        """The whole to_blob/from_blob pipeline must also stay ahead."""
        speedup = _blob_speedup(results)
        assert speedup >= MIN_BLOB_SPEEDUP, (
            f"blob encode+decode speedup {speedup:.2f}x below the "
            f"{MIN_BLOB_SPEEDUP}x floor ({results})"
        )

    def test_report_written(self, results):
        """Write the JSON report when BENCH_SKETCH_OUT names a path."""
        out_path = os.environ.get("BENCH_SKETCH_OUT")
        if not out_path:
            pytest.skip("BENCH_SKETCH_OUT not set; not writing a report")
        report = {
            "meta": {
                "m_bits": M_BITS,
                "items_per_filter": ITEMS_PER_FILTER,
                "filters": N_FILTERS,
                "membership_probes": MEMBERSHIP_PROBES,
                "coder_speedup_vs_seed": round(_coder_speedup(results), 2),
                "blob_speedup_vs_seed": round(_blob_speedup(results), 2),
            },
            "workloads": results,
        }
        with open(out_path, "w") as fh:
            json.dump(report, fh, indent=1, sort_keys=True)
            fh.write("\n")
