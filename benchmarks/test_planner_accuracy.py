"""Planner quality as a tracked metric.

The cost-based planner's job is to pick the measured-fastest algorithm for
every cell of the paper's evaluation grid (Figs. 7 and 8: environment ×
query × k).  This harness replays that grid, measures every candidate
algorithm, and scores the planner two ways:

* **hit rate** — fraction of cells where ``algorithm="auto"`` would have
  picked the measured-fastest algorithm (acceptance floor: 70%; current
  target since the join-profile-aware HRJN depth replay: 20/20);
* **regret** — time of the planner's choice relative to the fastest
  (how much a wrong pick actually costs).

Calibration snapshot at the time of writing: 20/20 cells (100%), mean
regret 1.000×.  The former last miss — LC Q1 k=20, an ISL/BFHM near-tie
driven by the HRJN depth simulation's uniform-selectivity model running
one ~100-row batch short — fell to the join-profile-aware results model
(score-correlated join skew deepens the simulated scan exactly as it does
the real one).  The LC Q2 k=100 repair-cascade cell still estimates
within 15% of measured (asserted below).

Run through ``make bench-planner`` the per-cell regrets are written to a
candidate JSON (via ``BENCH_PLANNER_OUT``) and diffed warn-only against
the committed ``BENCH_planner.json`` baseline.
"""

from __future__ import annotations

import json
import os

import pytest

from benchmarks.conftest import KS
from repro.tpch.queries import q1, q2

#: candidate pools mirror the algorithms each figure evaluates
EC2_ALGORITHMS = ["hive", "pig", "ijlmr", "isl", "bfhm"]
LC_ALGORITHMS = ["isl", "bfhm", "drjn"]

ACCURACY_FLOOR = 0.70
#: fig7+fig8 cells the planner must pick correctly (ISSUE 4: all of them)
ACCURACY_TARGET_HITS = 20
REGRET_CEILING = 1.10
#: |est - measured| / measured ceiling for the repair-cascade showcase cell
CASCADE_CELL_TOLERANCE = 0.15

_CACHE: dict = {}


def _grid(setup, algorithms, label):
    """Measure every (query, k, algorithm) cell and plan each query."""
    from repro.bench.harness import run_point

    if label in _CACHE:
        return _CACHE[label]
    cells = []
    for query_factory, qname in ((q1, "Q1"), (q2, "Q2")):
        for k in KS:
            query = query_factory(k)
            truth = setup.ground_truth(query, k)
            measured = {
                name: run_point(setup, query, name, truth) for name in algorithms
            }
            plan = setup.engine.plan(query, algorithms=algorithms)
            cells.append((qname, k, measured, plan))
    _CACHE[label] = cells
    return cells


def _score(cells):
    hits = 0
    regrets = []
    rows = []
    for qname, k, measured, plan in cells:
        fastest = min(measured, key=lambda name: measured[name].time_s)
        chosen = plan.chosen
        hit = chosen == fastest
        hits += hit
        regret = measured[chosen].time_s / measured[fastest].time_s
        regrets.append(regret)
        rows.append(
            f"  {qname} k={k:>3}: fastest={fastest:<6} chosen={chosen:<6} "
            f"{'OK  ' if hit else 'MISS'} regret={regret:.3f}"
        )
    return hits, regrets, rows


class TestPlannerAccuracy:
    def test_ec2_grid(self, ec2_setup, benchmark):
        """Fig. 7 grid: the planner must track BFHM's across-the-board win."""
        cells = benchmark.pedantic(
            lambda: _grid(ec2_setup, EC2_ALGORITHMS, "ec2"),
            rounds=1, iterations=1,
        )
        hits, regrets, rows = _score(cells)
        print("\nplanner vs measured-fastest (EC2 / Fig. 7):")
        print("\n".join(rows))
        assert hits / len(cells) >= ACCURACY_FLOOR

    def test_lc_grid(self, lc_setup, benchmark):
        """Fig. 8 grid: ISL/BFHM interleave — the hard case for a planner."""
        cells = benchmark.pedantic(
            lambda: _grid(lc_setup, LC_ALGORITHMS, "lc"),
            rounds=1, iterations=1,
        )
        hits, regrets, rows = _score(cells)
        print("\nplanner vs measured-fastest (LC / Fig. 8):")
        print("\n".join(rows))
        assert hits / len(cells) >= ACCURACY_FLOOR

    def test_combined_grid_meets_acceptance_floor(self, ec2_setup, lc_setup,
                                                  benchmark):
        """The acceptance criterion: ≥70% of the full fig7+fig8 grid."""
        def measure():
            return (
                _grid(ec2_setup, EC2_ALGORITHMS, "ec2")
                + _grid(lc_setup, LC_ALGORITHMS, "lc")
            )

        cells = benchmark.pedantic(measure, rounds=1, iterations=1)
        hits, regrets, _ = _score(cells)
        accuracy = hits / len(cells)
        mean_regret = sum(regrets) / len(regrets)
        print(f"\nplanner accuracy: {hits}/{len(cells)} = {accuracy:.0%}, "
              f"mean regret {mean_regret:.3f}x")
        assert accuracy >= ACCURACY_FLOOR
        assert hits >= ACCURACY_TARGET_HITS
        # even when the planner misses, it must miss between near-ties:
        # the chosen algorithm stays close to the measured optimum
        assert mean_regret <= REGRET_CEILING

    def test_repair_cascade_cell_estimated_within_tolerance(self, lc_setup,
                                                            benchmark):
        """The ISSUE-3 cell: LC Q2 k=100's §5.3 cascade (2 repair rounds,
        ~380 re-admitted pairs) used to be priced as free, leaving BFHM
        ~22% underestimated; the symbolic replay must land within 15%."""
        cells = benchmark.pedantic(
            lambda: _grid(lc_setup, LC_ALGORITHMS, "lc"),
            rounds=1, iterations=1,
        )
        (cell,) = [c for c in cells if c[0] == "Q2" and c[1] == 100]
        _, _, measured, plan = cell
        estimate = plan.estimate("bfhm")
        error = abs(estimate.time_s - measured["bfhm"].time_s)
        assert error / measured["bfhm"].time_s <= CASCADE_CELL_TOLERANCE
        # the run really cascades, and the simulator says so too
        assert measured["bfhm"].details["repair_rounds"] >= 1
        assert any(
            component.startswith("repair r")
            for component in estimate.breakdown
        )

    def test_explain_shows_repair_round_cost_lines(self, lc_setup):
        """EXPLAIN renders the cascade's per-round cost components."""
        plan = lc_setup.engine.plan(q2(100), algorithms=LC_ALGORITHMS)
        rendered = plan.render()
        # per-round components appear in the per-algorithm cost lines ...
        assert "repair r1" in rendered
        assert "repair r2" in rendered
        # ... and the BFHM estimate carries the cascade summary note
        assert any(
            note.startswith("repair cascade:")
            for note in plan.estimate("bfhm").notes
        )

    def test_bench_planner_report_written(self, ec2_setup, lc_setup):
        """Write per-cell regrets when BENCH_PLANNER_OUT names a path
        (the `make bench-planner` flow, diffed via tools/bench_diff.py)."""
        out_path = os.environ.get("BENCH_PLANNER_OUT")
        if not out_path:
            pytest.skip("BENCH_PLANNER_OUT not set; not writing a report")
        ec2_cells = _grid(ec2_setup, EC2_ALGORITHMS, "ec2")
        lc_cells = _grid(lc_setup, LC_ALGORITHMS, "lc")
        cells = ec2_cells + lc_cells
        hits, regrets, _ = _score(cells)
        workloads = {}
        labeled = ([("ec2", cell) for cell in ec2_cells]
                   + [("lc", cell) for cell in lc_cells])
        for grid, (qname, k, measured, plan) in labeled:
            fastest = min(measured, key=lambda name: measured[name].time_s)
            regret = measured[plan.chosen].time_s / measured[fastest].time_s
            workloads[f"{grid}_{qname}_k{k}"] = {
                "seconds": round(regret, 6),
                "chosen": plan.chosen,
                "fastest": fastest,
            }
        workloads["mean_regret"] = {
            "seconds": round(sum(regrets) / len(regrets), 6),
            "hits": hits,
            "cells": len(cells),
        }
        with open(out_path, "w") as fh:
            json.dump({"workloads": workloads}, fh, indent=1, sort_keys=True)
            fh.write("\n")

    def test_never_picks_a_mapreduce_baseline(self, ec2_setup, benchmark):
        """Coordinator algorithms dominate interactive queries on both
        profiles (§7.2); job startup alone dwarfs small-k budgets."""
        cells = benchmark.pedantic(
            lambda: _grid(ec2_setup, EC2_ALGORITHMS, "ec2"),
            rounds=1, iterations=1,
        )
        for qname, k, _, plan in cells:
            assert plan.chosen in ("isl", "bfhm"), (qname, k, plan.chosen)

    def test_explain_does_not_execute(self, ec2_setup):
        """EXPLAIN must price queries off cached statistics alone — zero
        metered reads, zero simulated time."""
        platform = ec2_setup.platform
        before = platform.metrics.snapshot()
        plan = ec2_setup.engine.explain(
            "SELECT * FROM part P, lineitem L WHERE P.partkey = L.partkey "
            "ORDER BY P.retailprice * L.extendedprice STOP AFTER 10"
        )
        after = platform.metrics.snapshot()
        delta = after - before
        assert delta.sim_time_s == 0.0
        assert delta.kv_reads == 0
        assert delta.network_bytes == 0
        rendered = plan.render()
        assert "QUERY PLAN" in rendered
        for name in EC2_ALGORITHMS:
            assert name.upper() in rendered
