"""Planner quality as a tracked metric.

The cost-based planner's job is to pick the measured-fastest algorithm for
every cell of the paper's evaluation grid (Figs. 7 and 8: environment ×
query × k).  This harness replays that grid, measures every candidate
algorithm, and scores the planner two ways:

* **hit rate** — fraction of cells where ``algorithm="auto"`` would have
  picked the measured-fastest algorithm (acceptance floor: 70%);
* **regret** — time of the planner's choice relative to the fastest
  (how much a wrong pick actually costs).

Calibration snapshot at the time of writing: 18/20 cells (90%), mean
regret ≈ 1.01×; both misses are ISL/BFHM near-ties on the LC profile.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import KS
from repro.tpch.queries import q1, q2

#: candidate pools mirror the algorithms each figure evaluates
EC2_ALGORITHMS = ["hive", "pig", "ijlmr", "isl", "bfhm"]
LC_ALGORITHMS = ["isl", "bfhm", "drjn"]

ACCURACY_FLOOR = 0.70
REGRET_CEILING = 1.10

_CACHE: dict = {}


def _grid(setup, algorithms, label):
    """Measure every (query, k, algorithm) cell and plan each query."""
    from repro.bench.harness import run_point

    if label in _CACHE:
        return _CACHE[label]
    cells = []
    for query_factory, qname in ((q1, "Q1"), (q2, "Q2")):
        for k in KS:
            query = query_factory(k)
            truth = setup.ground_truth(query, k)
            measured = {
                name: run_point(setup, query, name, truth) for name in algorithms
            }
            plan = setup.engine.plan(query, algorithms=algorithms)
            cells.append((qname, k, measured, plan))
    _CACHE[label] = cells
    return cells


def _score(cells):
    hits = 0
    regrets = []
    rows = []
    for qname, k, measured, plan in cells:
        fastest = min(measured, key=lambda name: measured[name].time_s)
        chosen = plan.chosen
        hit = chosen == fastest
        hits += hit
        regret = measured[chosen].time_s / measured[fastest].time_s
        regrets.append(regret)
        rows.append(
            f"  {qname} k={k:>3}: fastest={fastest:<6} chosen={chosen:<6} "
            f"{'OK  ' if hit else 'MISS'} regret={regret:.3f}"
        )
    return hits, regrets, rows


class TestPlannerAccuracy:
    def test_ec2_grid(self, ec2_setup, benchmark):
        """Fig. 7 grid: the planner must track BFHM's across-the-board win."""
        cells = benchmark.pedantic(
            lambda: _grid(ec2_setup, EC2_ALGORITHMS, "ec2"),
            rounds=1, iterations=1,
        )
        hits, regrets, rows = _score(cells)
        print("\nplanner vs measured-fastest (EC2 / Fig. 7):")
        print("\n".join(rows))
        assert hits / len(cells) >= ACCURACY_FLOOR

    def test_lc_grid(self, lc_setup, benchmark):
        """Fig. 8 grid: ISL/BFHM interleave — the hard case for a planner."""
        cells = benchmark.pedantic(
            lambda: _grid(lc_setup, LC_ALGORITHMS, "lc"),
            rounds=1, iterations=1,
        )
        hits, regrets, rows = _score(cells)
        print("\nplanner vs measured-fastest (LC / Fig. 8):")
        print("\n".join(rows))
        assert hits / len(cells) >= ACCURACY_FLOOR

    def test_combined_grid_meets_acceptance_floor(self, ec2_setup, lc_setup,
                                                  benchmark):
        """The acceptance criterion: ≥70% of the full fig7+fig8 grid."""
        def measure():
            return (
                _grid(ec2_setup, EC2_ALGORITHMS, "ec2")
                + _grid(lc_setup, LC_ALGORITHMS, "lc")
            )

        cells = benchmark.pedantic(measure, rounds=1, iterations=1)
        hits, regrets, _ = _score(cells)
        accuracy = hits / len(cells)
        mean_regret = sum(regrets) / len(regrets)
        print(f"\nplanner accuracy: {hits}/{len(cells)} = {accuracy:.0%}, "
              f"mean regret {mean_regret:.3f}x")
        assert accuracy >= ACCURACY_FLOOR
        # even when the planner misses, it must miss between near-ties:
        # the chosen algorithm stays close to the measured optimum
        assert mean_regret <= REGRET_CEILING

    def test_never_picks_a_mapreduce_baseline(self, ec2_setup, benchmark):
        """Coordinator algorithms dominate interactive queries on both
        profiles (§7.2); job startup alone dwarfs small-k budgets."""
        cells = benchmark.pedantic(
            lambda: _grid(ec2_setup, EC2_ALGORITHMS, "ec2"),
            rounds=1, iterations=1,
        )
        for qname, k, _, plan in cells:
            assert plan.chosen in ("isl", "bfhm"), (qname, k, plan.chosen)

    def test_explain_does_not_execute(self, ec2_setup):
        """EXPLAIN must price queries off cached statistics alone — zero
        metered reads, zero simulated time."""
        platform = ec2_setup.platform
        before = platform.metrics.snapshot()
        plan = ec2_setup.engine.explain(
            "SELECT * FROM part P, lineitem L WHERE P.partkey = L.partkey "
            "ORDER BY P.retailprice * L.extendedprice STOP AFTER 10"
        )
        after = platform.metrics.snapshot()
        delta = after - before
        assert delta.sim_time_s == 0.0
        assert delta.kv_reads == 0
        assert delta.network_bytes == 0
        rendered = plan.render()
        assert "QUERY PLAN" in rendered
        for name in EC2_ALGORITHMS:
            assert name.upper() in rendered
