"""Legacy setup shim.

The offline environment lacks the `wheel` package, so PEP-517 editable
builds (which need bdist_wheel) fail; this shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` (and plain
``pip install -e .`` on newer toolchains) work everywhere.
"""

from setuptools import setup

setup()
